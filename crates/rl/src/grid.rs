//! The scenario-grid trainer behind the `wsd-train` binary: every
//! (scenario family × pattern) cell of the synthetic evaluation grid,
//! trained deterministically and frozen into versioned
//! [`PolicyArtifact`]s for the policy registry.
//!
//! Determinism contract: a cell's artifact is a pure function of
//! `(master seed, iterations, cell index)`. Per-cell seeds derive via
//! the engine's splitmix64 [`replica_seed`] bijection — never additive
//! offsets — so cells share no RNG streams with each other or with
//! adjacent master seeds, and the grid can be driven by
//! [`parallel_map`] under any thread count without changing a single
//! artifact byte (wall time lives in the [`CellReport`], outside the
//! artifact).
//!
//! The scenario families mirror the accuracy-gate / bench streams:
//! each cell trains on a *smaller* graph of the same family as its
//! evaluation stream (the paper's Table I train/test pairing), under
//! the same light-churn deletion scenario.

use crate::trainer::{train, TrainerConfig};
use std::time::Duration;
use wsd_core::engine::{parallel_map, replica_seed};
use wsd_core::{PolicyArtifact, PolicyMeta};
use wsd_graph::{Edge, Pattern};
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::Scenario;

/// Scenario families of the training grid, named after the evaluation
/// streams they pair with.
pub const SCENARIOS: [&str; 4] = ["ba-light", "hub-light", "ff-light", "community-light"];

/// Patterns of the training grid.
pub const PATTERNS: [Pattern; 3] = [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique];

/// One (scenario, pattern) training cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridCell {
    /// Position in the full grid; seeds derive from it.
    pub index: u64,
    /// Scenario family name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Pattern the policy optimises for.
    pub pattern: Pattern,
}

impl GridCell {
    /// `"<scenario>:<pattern>"`, the `--cells` selector syntax.
    pub fn key(&self) -> String {
        format!("{}:{}", self.scenario, self.pattern.name())
    }
}

/// The full 4×3 grid, in a fixed order (cell indices are stable across
/// releases; artifacts embed the seed, not the index).
pub fn full_grid() -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(SCENARIOS.len() * PATTERNS.len());
    for scenario in SCENARIOS {
        for pattern in PATTERNS {
            cells.push(GridCell { index: cells.len() as u64, scenario, pattern });
        }
    }
    cells
}

/// The training graph of a scenario family: same generator family as
/// the matching evaluation stream, smaller, and under a generation seed
/// disjoint from every evaluation seed (the policy must generalise to
/// the eval stream, not memorise it).
pub fn training_graph(scenario: &str) -> Vec<Edge> {
    match scenario {
        "ba-light" => {
            GeneratorConfig::BarabasiAlbert { vertices: 600, edges_per_vertex: 5 }.generate(4201)
        }
        "hub-light" => GeneratorConfig::HubClique { clique: 24, spokes: 700 }.generate(4202),
        "ff-light" => {
            GeneratorConfig::ForestFire { vertices: 700, forward_prob: 0.35 }.generate(4203)
        }
        "community-light" => GeneratorConfig::Community {
            vertices: 700,
            intra_links: 4,
            inter_links: 1,
            new_community_prob: 0.02,
        }
        .generate(4204),
        other => panic!("unknown scenario family {other:?} (known: {SCENARIOS:?})"),
    }
}

/// Everything `wsd-train` reports per cell beyond the artifact itself.
pub struct CellReport {
    /// The cell that was trained.
    pub cell: GridCell,
    /// Optimisation steps performed.
    pub optimizer_steps: usize,
    /// Transitions collected.
    pub transitions: usize,
    /// Episodes (stream passes) consumed.
    pub episodes: usize,
    /// Wall-clock training time (excluded from the artifact bytes).
    pub wall_time: Duration,
    /// Critic loss every ~50 steps.
    pub critic_loss_trace: Vec<f64>,
}

/// Trains one cell; returns the frozen artifact plus its report.
///
/// Bit-deterministic in `(master_seed, iterations, cell)`: the cell's
/// trainer seed is `replica_seed(master_seed, cell.index)` and the
/// training graph is fixed per family, so the artifact's bytes never
/// depend on scheduling.
pub fn train_cell(
    cell: GridCell,
    master_seed: u64,
    iterations: usize,
) -> (PolicyArtifact, CellReport) {
    let edges = training_graph(cell.scenario);
    // The evaluation streams budget M = |stream| / 5; a light-churn
    // stream over |E| edges has ≈ 1.4·|E| events, so match that ratio
    // against the training graph.
    let capacity = (edges.len() * 14 / 50).max(cell.pattern.num_edges() + 20);
    let train_seed = replica_seed(master_seed, cell.index);
    let mut cfg = TrainerConfig::paper_defaults(cell.pattern, capacity);
    cfg.iterations = iterations;
    cfg.seed = train_seed;
    let report = train(&edges, Scenario::default_light(), &cfg);
    let artifact = PolicyArtifact {
        meta: PolicyMeta {
            pattern: cell.pattern,
            scenario: cell.scenario.to_string(),
            capacity: capacity as u64,
            train_seed,
            iterations: iterations as u64,
        },
        policy: report.policy,
    };
    let cell_report = CellReport {
        cell,
        optimizer_steps: report.optimizer_steps,
        transitions: report.transitions,
        episodes: report.episodes,
        wall_time: report.wall_time,
        critic_loss_trace: report.critic_loss_trace,
    };
    (artifact, cell_report)
}

/// Trains a set of cells over [`parallel_map`] with `threads` workers.
/// The artifact bytes are invariant under `threads` — only wall times
/// (and output interleaving) change.
pub fn train_grid(
    cells: &[GridCell],
    master_seed: u64,
    iterations: usize,
    threads: usize,
) -> Vec<(PolicyArtifact, CellReport)> {
    parallel_map(cells.len(), threads, |i| train_cell(cells[i], master_seed, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_covers_every_scenario_pattern_pair() {
        let grid = full_grid();
        assert_eq!(grid.len(), 12);
        for (i, cell) in grid.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert!(SCENARIOS.contains(&cell.scenario));
            assert!(PATTERNS.contains(&cell.pattern));
        }
        // Distinct keys, distinct derived seeds.
        let keys: std::collections::HashSet<String> = grid.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 12);
        let seeds: std::collections::HashSet<u64> =
            grid.iter().map(|c| replica_seed(0xDD_96, c.index)).collect();
        assert_eq!(seeds.len(), 12);
    }

    #[test]
    fn every_training_graph_generates() {
        for scenario in SCENARIOS {
            let edges = training_graph(scenario);
            assert!(edges.len() > 200, "{scenario}: only {} edges", edges.len());
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario family")]
    fn unknown_scenario_panics() {
        let _ = training_graph("zipf-heavy");
    }

    #[test]
    fn artifacts_are_bit_identical_across_thread_counts() {
        // The acceptance tooth for the parallel driver: a 2-cell grid
        // trained on 1 thread and on 2 threads must freeze byte-equal
        // artifacts (tiny budget — this is about scheduling, not
        // convergence).
        let grid = full_grid();
        let cells = [grid[1], grid[4]]; // ba-light:triangle, hub-light:triangle
        let serial = train_grid(&cells, 99, 6, 1);
        let parallel = train_grid(&cells, 99, 6, 2);
        for ((a, ra), (b, rb)) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.encode(),
                b.encode(),
                "cell {} drifted across thread counts",
                ra.cell.key()
            );
            assert_eq!(ra.optimizer_steps, rb.optimizer_steps);
            assert_eq!(ra.transitions, rb.transitions);
            assert_eq!(ra.episodes, rb.episodes);
        }
    }

    #[test]
    fn cell_seeds_flow_into_the_artifact_meta() {
        let cell = full_grid()[7];
        let (artifact, report) = train_cell(cell, 123, 4);
        assert_eq!(artifact.meta.train_seed, replica_seed(123, 7));
        assert_eq!(artifact.meta.scenario, cell.scenario);
        assert_eq!(artifact.meta.pattern, cell.pattern);
        assert_eq!(artifact.meta.iterations, 4);
        assert_eq!(artifact.policy.dim(), cell.pattern.num_edges() + 3);
        assert_eq!(report.optimizer_steps, 4);
    }
}
