//! The WSD-L training loop (paper §IV-B / §V-A).
//!
//! Per the paper's protocol: generate several event streams from the
//! same training graph with the same scenario parameters (default 10 —
//! "using fewer streams would suffer from the over-fitting problem"),
//! then run DDPG with replay capacity 10 000, mini-batches of 128, Adam
//! at 1e-3 and γ = 0.99 for a configured number of optimisation
//! iterations (paper: 1000). One optimisation step is performed per
//! collected transition once the replay holds a warm-up batch.
//!
//! The trained actor is exported as a frozen [`LinearPolicy`] — the
//! "hardcode θ in C++" step of §V-A, minus the C++.

use crate::ddpg::{Ddpg, DdpgConfig};
use crate::env::{ActorBridge, RewardScale, WsdEnv};
use crate::replay::ReplayBuffer;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wsd_core::engine::replica_seed;
use wsd_core::{LinearPolicy, TemporalPooling};
use wsd_graph::{Edge, Pattern};
use wsd_stream::Scenario;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// Pattern to optimise for.
    pub pattern: Pattern,
    /// Reservoir budget used during training.
    pub capacity: usize,
    /// DDPG optimisation steps (paper: 1000).
    pub iterations: usize,
    /// Mini-batch size N (paper: 128).
    pub batch_size: usize,
    /// Replay capacity (paper: 10 000).
    pub replay_capacity: usize,
    /// Number of training streams generated from the graph (paper: 10).
    pub num_streams: usize,
    /// DDPG hyper-parameters.
    pub ddpg: DdpgConfig,
    /// Temporal pooling of the state (Max = paper, Avg = ablation).
    pub pooling: TemporalPooling,
    /// Reward scaling (see [`RewardScale`]).
    pub reward_scale: RewardScale,
    /// Master seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// The paper's hyper-parameters for a given pattern/budget.
    pub fn paper_defaults(pattern: Pattern, capacity: usize) -> Self {
        Self {
            pattern,
            capacity,
            iterations: 1000,
            batch_size: 128,
            replay_capacity: 10_000,
            num_streams: 10,
            ddpg: DdpgConfig::default(),
            pooling: TemporalPooling::Max,
            reward_scale: RewardScale::Relative,
            seed: 0xDD_96,
        }
    }
}

/// Outcome of a training run.
pub struct TrainReport {
    /// The frozen policy ready for `Algorithm::WsdL`.
    pub policy: LinearPolicy,
    /// Optimisation steps actually performed.
    pub optimizer_steps: usize,
    /// Transitions collected.
    pub transitions: usize,
    /// Episodes (stream passes) consumed.
    pub episodes: usize,
    /// Wall-clock training time.
    pub wall_time: Duration,
    /// Critic loss every ~50 steps (monitoring).
    pub critic_loss_trace: Vec<f64>,
}

/// Trains a WSD-L policy on a training graph under a deletion scenario.
///
/// `edges` is the training graph's natural-order edge list; the trainer
/// derives `cfg.num_streams` distinct event streams from it.
pub fn train(edges: &[Edge], scenario: Scenario, cfg: &TrainerConfig) -> TrainReport {
    assert!(cfg.iterations > 0 && cfg.batch_size > 0 && cfg.num_streams > 0);
    let start = Instant::now();
    let state_dim = cfg.pattern.num_edges() + 3;
    let bridge = Arc::new(Mutex::new(ActorBridge {
        agent: Ddpg::new(state_dim, cfg.ddpg.clone(), cfg.seed),
        last: None,
        explore: true,
    }));
    let mut replay = ReplayBuffer::new(cfg.replay_capacity);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let mut steps = 0usize;
    let mut transitions = 0usize;
    let mut episodes = 0usize;
    let mut trace = Vec::new();
    'outer: loop {
        // Cycle through the training streams until the step budget is
        // exhausted.
        // Seeds derive via splitmix64 (`replica_seed`), not additive
        // offsets: adjacent master seeds must not share stream or
        // episode RNG streams (the PR-5 `Ensemble` fix, applied here so
        // the parallel grid driver's per-cell seeds stay independent).
        // The env tag is XOR-distinguished from the stream tag so an
        // episode's sampler RNG never collides with a stream
        // derivation of the same master seed.
        let stream_idx = episodes % cfg.num_streams;
        let stream = scenario.apply(edges, replica_seed(cfg.seed, stream_idx as u64));
        let mut env = WsdEnv::new(
            stream,
            cfg.pattern,
            cfg.capacity,
            cfg.pooling,
            bridge.clone(),
            cfg.reward_scale,
            replica_seed(cfg.seed ^ 0x00E5_EED5, episodes as u64),
        );
        episodes += 1;
        while let Some(t) = env.next_transition() {
            replay.push(t);
            transitions += 1;
            if replay.len() >= cfg.batch_size {
                let (critic_loss, _mean_q) = {
                    let batch = replay.sample(cfg.batch_size, &mut rng);
                    bridge.lock().expect("bridge poisoned").agent.update(&batch)
                };
                steps += 1;
                if steps.is_multiple_of(50) {
                    trace.push(critic_loss);
                }
                if steps >= cfg.iterations {
                    break 'outer;
                }
            }
        }
        // Safety valve: if streams are too short to ever fill a batch,
        // keep collecting across episodes; abort only if nothing can be
        // collected at all.
        if transitions == 0 {
            panic!("training streams produced no transitions (fewer than 2 insertions?)");
        }
        if episodes > cfg.num_streams * 1000 {
            break; // unreachable in practice; prevents infinite loops
        }
    }
    let policy = bridge.lock().expect("bridge poisoned").agent.export_policy();
    TrainReport {
        policy,
        optimizer_steps: steps,
        transitions,
        episodes,
        wall_time: start.elapsed(),
        critic_loss_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_stream::gen::GeneratorConfig;

    fn training_graph() -> Vec<Edge> {
        GeneratorConfig::HolmeKim { vertices: 120, edges_per_vertex: 4, triad_prob: 0.6 }
            .generate(99)
    }

    #[test]
    fn trains_and_exports_policy() {
        let edges = training_graph();
        let mut cfg = TrainerConfig::paper_defaults(Pattern::Triangle, 80);
        cfg.iterations = 60;
        cfg.batch_size = 32;
        cfg.num_streams = 2;
        let report = train(&edges, Scenario::default_light(), &cfg);
        assert_eq!(report.optimizer_steps, 60);
        assert!(report.transitions >= 60);
        assert_eq!(report.policy.dim(), 6);
        assert!(report.wall_time.as_nanos() > 0);
        assert!(!report.critic_loss_trace.is_empty());
    }

    #[test]
    fn same_seed_twice_yields_a_bit_identical_report() {
        let edges = training_graph();
        let mut cfg = TrainerConfig::paper_defaults(Pattern::Wedge, 60);
        cfg.iterations = 30;
        cfg.batch_size = 16;
        cfg.num_streams = 2;
        let a = train(&edges, Scenario::default_light(), &cfg);
        let b = train(&edges, Scenario::default_light(), &cfg);
        // Everything but wall time is pinned bit for bit: policy
        // parameters, counters, and the critic-loss trace.
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.optimizer_steps, b.optimizer_steps);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.episodes, b.episodes);
        let bits = |t: &[f64]| t.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.critic_loss_trace), bits(&b.critic_loss_trace));
    }

    #[test]
    fn adjacent_seeds_do_not_share_trajectories() {
        // With additive offsets, master seeds s and s+1 shared stream
        // seeds (s+1, s+2, …) shifted by one; splitmix64 derivation
        // decorrelates them completely. Observable teeth: the collected
        // transition counts and traces diverge.
        let edges = training_graph();
        let mut cfg = TrainerConfig::paper_defaults(Pattern::Wedge, 60);
        cfg.iterations = 30;
        cfg.batch_size = 16;
        cfg.num_streams = 2;
        cfg.seed = 7;
        let a = train(&edges, Scenario::default_light(), &cfg);
        cfg.seed = 8;
        let b = train(&edges, Scenario::default_light(), &cfg);
        assert_ne!(
            (a.policy, a.critic_loss_trace.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
            (b.policy, b.critic_loss_trace.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
        );
    }

    #[test]
    fn multiple_episodes_when_streams_are_short() {
        let edges: Vec<Edge> = GeneratorConfig::ErdosRenyi { vertices: 40, edges: 60 }.generate(5);
        let mut cfg = TrainerConfig::paper_defaults(Pattern::Triangle, 30);
        cfg.iterations = 200;
        cfg.batch_size = 16;
        cfg.num_streams = 3;
        let report = train(&edges, Scenario::InsertOnly, &cfg);
        assert!(report.episodes > 3, "short streams must recycle: {}", report.episodes);
        assert_eq!(report.optimizer_steps, 200);
    }
}
