//! Eq. (26) of the paper: with undiscounted, unscaled rewards the
//! episode return telescopes, `Σ r_k = ε(t_1) − ε(t_N) = −ε(t_N)`
//! (the estimate is exact while the reservoir is below capacity, so
//! ε(t_1) = 0). This pins the environment's reward wiring to the paper's
//! objective: maximising return ⇔ minimising the final estimation error.

use wsd_graph::Pattern;
use wsd_rl::env::RewardScale;
use wsd_rl::test_support::run_episode_raw;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::Scenario;

#[test]
fn episode_return_telescopes_to_final_error() {
    let edges = GeneratorConfig::HolmeKim { vertices: 250, edges_per_vertex: 5, triad_prob: 0.6 }
        .generate(13);
    let stream = Scenario::default_light().apply(&edges, 13);
    // A small budget so the estimate genuinely drifts from the truth.
    let (reward_sum, final_eps, first_eps) = run_episode_raw(stream, Pattern::Triangle, 120, 7);
    assert_eq!(first_eps, 0.0, "estimate must be exact before the reservoir fills");
    assert!(
        (reward_sum - (first_eps - final_eps)).abs() < 1e-6,
        "Σ rewards = {reward_sum} but ε(t_1) − ε(t_N) = {}",
        first_eps - final_eps
    );
    assert!(final_eps > 0.0, "a 120-edge budget should not be exact");
}

#[test]
fn relative_scaling_preserves_reward_signs() {
    // The Relative mode divides each reward by max(1, truth): signs (and
    // hence the improvement structure) must match Raw mode.
    let edges = GeneratorConfig::HolmeKim { vertices: 200, edges_per_vertex: 4, triad_prob: 0.5 }
        .generate(17);
    let stream = Scenario::default_light().apply(&edges, 17);
    let raw = wsd_rl::test_support::episode_rewards(
        stream.clone(),
        Pattern::Triangle,
        90,
        5,
        RewardScale::Raw,
    );
    let rel = wsd_rl::test_support::episode_rewards(
        stream,
        Pattern::Triangle,
        90,
        5,
        RewardScale::Relative,
    );
    assert_eq!(raw.len(), rel.len());
    for (a, b) in raw.iter().zip(&rel) {
        assert_eq!(a.signum(), b.signum(), "scaling must not flip reward signs ({a} vs {b})");
    }
    assert!(raw.iter().any(|&r| r != 0.0), "episode should have non-zero rewards");
}
