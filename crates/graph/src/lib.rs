//! # wsd-graph
//!
//! Graph substrate for the WSD reproduction: edge/event types, a fast
//! hash substrate, dynamic adjacency structures, subgraph-pattern
//! enumeration, and an exact incremental subgraph counter used as ground
//! truth by the reinforcement-learning reward signal and the evaluation
//! harness.
//!
//! Everything in this crate is deterministic: no randomness, no global
//! state, and hash maps use a fixed (non-randomised) hasher so that
//! iteration order is reproducible across runs of the same binary.
//!
//! The central abstractions are:
//!
//! * [`Edge`] — an undirected, canonicalised, self-loop-free edge.
//! * [`EdgeEvent`] — an insertion or deletion event `(op, e_t)` of a fully
//!   dynamic graph stream (paper §II).
//! * [`Adjacency`] — a dynamic adjacency structure whose
//!   common-neighbour intersection runs on sorted shadows with galloping
//!   jumps (sub-linear for hub–hub events); [`VertexAdjacency`] is its
//!   ID-free twin for count-only algorithms.
//! * [`Pattern`] — the subgraph patterns of interest (wedge, triangle,
//!   4-clique, generic k-clique) together with *completion enumeration*:
//!   the set of instances a newly arriving edge completes against a given
//!   (sampled or full) graph. This single kernel powers every estimator in
//!   `wsd-core` as well as the exact counter.
//! * [`ExactCounter`] — exact `|J(t)|` maintained incrementally over the
//!   stream.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adjacency;
pub mod edge;
pub mod exact;
pub mod fxhash;
pub mod patterns;

pub use adjacency::{
    Adjacency, AdjacencyBase, AdjacencyLayout, CommonEdge, EdgeId, IdPayload, Neighborhood,
    VertexAdjacency, SHADOW_THRESHOLD,
};
pub use edge::{Edge, EdgeEvent, Op, Vertex};
pub use exact::ExactCounter;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use patterns::{InstanceBlock, LayeredLevels, Pattern, BLOCK_LANES, MAX_BLOCK_WIDTH};
