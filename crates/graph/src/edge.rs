//! Edge and stream-event types (paper §II).
//!
//! A fully dynamic graph stream is a sequence `S = {s(1), s(2), ...}` where
//! each element `s(t) = (op, e_t)` inserts (`op = +`) or deletes (`op = −`)
//! an undirected edge. Following the paper (and every system it compares
//! against), graphs are simple and undirected: directions, weights and
//! self-loops in source data are dropped before streaming.

use std::fmt;

/// A vertex identifier.
///
/// Plain `u64` keeps the substrate generic enough for web-scale ids while
/// remaining `Copy`-cheap; all hot maps use the Fx hasher from
/// [`crate::fxhash`], for which integer keys are the fast path.
pub type Vertex = u64;

/// An undirected, canonicalised edge with no self-loops.
///
/// The constructor enforces the invariant `u() < v()`, so `Edge::new(a, b)`
/// and `Edge::new(b, a)` compare and hash identically. This canonical form
/// is what makes edges usable as reservoir keys.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    u: Vertex,
    v: Vertex,
}

impl Edge {
    /// Creates a canonical edge between two distinct vertices.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop). Use [`Edge::try_new`] for fallible
    /// construction when consuming untrusted edge lists.
    #[inline]
    pub fn new(a: Vertex, b: Vertex) -> Self {
        Self::try_new(a, b).expect("self-loops are not valid edges")
    }

    /// Creates a canonical edge, returning `None` for self-loops.
    #[inline]
    pub fn try_new(a: Vertex, b: Vertex) -> Option<Self> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(Self { u: a, v: b }),
            std::cmp::Ordering::Greater => Some(Self { u: b, v: a }),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(&self) -> Vertex {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(&self) -> Vertex {
        self.v
    }

    /// Both endpoints as `(u, v)` with `u < v`.
    #[inline]
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (self.u, self.v)
    }

    /// Whether `x` is one of the endpoints.
    #[inline]
    pub fn touches(&self, x: Vertex) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: Vertex) -> Vertex {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}")
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.u, self.v)
    }
}

/// Stream operation: edge insertion or deletion.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// `op = +`: the edge is added to the graph.
    Insert,
    /// `op = −`: the edge is removed from the graph.
    Delete,
}

/// One element `s(t) = (op, e_t)` of a fully dynamic graph stream.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct EdgeEvent {
    /// Whether the edge is inserted or deleted.
    pub op: Op,
    /// The affected edge.
    pub edge: Edge,
}

impl EdgeEvent {
    /// Convenience constructor for an insertion event.
    #[inline]
    pub fn insert(edge: Edge) -> Self {
        Self { op: Op::Insert, edge }
    }

    /// Convenience constructor for a deletion event.
    #[inline]
    pub fn delete(edge: Edge) -> Self {
        Self { op: Op::Delete, edge }
    }

    /// True if this is an insertion.
    #[inline]
    pub fn is_insert(&self) -> bool {
        self.op == Op::Insert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonicalisation() {
        let e1 = Edge::new(3, 7);
        let e2 = Edge::new(7, 3);
        assert_eq!(e1, e2);
        assert_eq!(e1.u(), 3);
        assert_eq!(e1.v(), 7);
        assert_eq!(e1.endpoints(), (3, 7));
    }

    #[test]
    fn self_loop_rejected() {
        assert!(Edge::try_new(5, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = Edge::new(5, 5);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 2);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
        assert!(e.touches(1));
        assert!(e.touches(2));
        assert!(!e.touches(3));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let _ = Edge::new(1, 2).other(3);
    }

    #[test]
    fn event_constructors() {
        let e = Edge::new(1, 2);
        assert!(EdgeEvent::insert(e).is_insert());
        assert!(!EdgeEvent::delete(e).is_insert());
        assert_eq!(EdgeEvent::insert(e).edge, e);
    }

    proptest! {
        #[test]
        fn prop_symmetric(a in 0u64..1000, b in 0u64..1000) {
            prop_assume!(a != b);
            let e1 = Edge::new(a, b);
            let e2 = Edge::new(b, a);
            prop_assert_eq!(e1, e2);
            prop_assert!(e1.u() < e1.v());
            prop_assert_eq!(e1.other(e1.u()), e1.v());
        }
    }
}
