//! Exact incremental subgraph counting over a fully dynamic stream.
//!
//! Maintains `|J(t)|` — the exact number of instances of a pattern `H`
//! in the graph induced by the first `t` events — by counting the
//! instances each insertion completes and each deletion destroys
//! (paper §II; used for the RL reward `ε(t) = |c(t) − |J(t)||` of Eq. 24
//! and for the ARE/MARE metrics of §V).
//!
//! Complexity per event matches the samplers' `γ` term: `O(min-degree)`
//! for wedges/triangles, `O(common² )` for 4-cliques.

use crate::adjacency::{Adjacency, AdjacencyBase, IdPayload};
use crate::edge::{EdgeEvent, Op};
use crate::patterns::{EnumScratch, Pattern};

/// Exact `|J(t)|` tracker.
///
/// Feasibility of the stream (no duplicate insertions, no deletions of
/// absent edges — assumed by the paper's problem definition) is enforced:
/// [`ExactCounter::apply`] returns an error on infeasible events so that
/// generator bugs surface immediately instead of silently corrupting
/// ground truth.
#[derive(Clone, Debug)]
pub struct ExactCounter {
    pattern: Pattern,
    graph: Adjacency,
    count: u64,
    scratch: EnumScratch,
    events: u64,
}

/// Error returned when a stream violates the feasibility assumption of
/// paper §II (inserting a present edge / deleting an absent one).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InfeasibleEvent {
    /// The offending event.
    pub event: EdgeEvent,
    /// Index of the event within the stream fed to this counter (0-based).
    pub index: u64,
}

impl std::fmt::Display for InfeasibleEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let verb = match self.event.op {
            Op::Insert => "insert of already-present",
            Op::Delete => "delete of absent",
        };
        write!(f, "infeasible stream event #{}: {} edge {:?}", self.index, verb, self.event.edge)
    }
}

impl std::error::Error for InfeasibleEvent {}

impl ExactCounter {
    /// Creates a counter for the given pattern over an initially empty
    /// graph.
    pub fn new(pattern: Pattern) -> Self {
        pattern.validate().expect("invalid pattern passed to ExactCounter");
        Self {
            pattern,
            graph: Adjacency::new(),
            count: 0,
            scratch: EnumScratch::default(),
            events: 0,
        }
    }

    /// The tracked pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The exact instance count after all events applied so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current full graph.
    pub fn graph(&self) -> &Adjacency {
        &self.graph
    }

    /// Number of events applied so far.
    pub fn events_applied(&self) -> u64 {
        self.events
    }

    /// Applies one stream event, returning the updated exact count.
    pub fn apply(&mut self, ev: EdgeEvent) -> Result<u64, InfeasibleEvent> {
        match ev.op {
            Op::Insert => {
                if self.graph.contains(ev.edge) {
                    return Err(InfeasibleEvent { event: ev, index: self.events });
                }
                self.count += self.pattern.count_completed(&self.graph, ev.edge, &mut self.scratch);
                self.graph.insert(ev.edge);
            }
            Op::Delete => {
                if !self.graph.remove(ev.edge) {
                    return Err(InfeasibleEvent { event: ev, index: self.events });
                }
                // Instances destroyed = instances that contained the edge,
                // i.e. instances completed by re-adding it.
                self.count -= self.pattern.count_completed(&self.graph, ev.edge, &mut self.scratch);
            }
        }
        self.events += 1;
        Ok(self.count)
    }

    /// Applies a whole stream, returning the final exact count.
    pub fn apply_all<I>(&mut self, events: I) -> Result<u64, InfeasibleEvent>
    where
        I: IntoIterator<Item = EdgeEvent>,
    {
        for ev in events {
            self.apply(ev)?;
        }
        Ok(self.count)
    }

    /// One-shot convenience: the exact count at the end of `events`.
    pub fn count_stream<I>(pattern: Pattern, events: I) -> Result<u64, InfeasibleEvent>
    where
        I: IntoIterator<Item = EdgeEvent>,
    {
        let mut c = Self::new(pattern);
        c.apply_all(events)
    }
}

/// Counts pattern instances in a static graph from scratch (no stream);
/// useful for cross-checking the incremental counter in tests and for
/// one-off analyses. Accepts any adjacency flavour — only the edge list
/// is consumed, so the ID-free [`crate::adjacency::VertexAdjacency`] of
/// the uniform baselines works too.
pub fn count_static<P: IdPayload>(pattern: Pattern, g: &AdjacencyBase<P>) -> u64 {
    // Insert the graph's edges one at a time into a fresh counter.
    let mut c = ExactCounter::new(pattern);
    for e in g.edges() {
        c.apply(EdgeEvent::insert(e)).expect("static graph edges are unique");
    }
    c.count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use proptest::prelude::*;

    fn ev(op: Op, a: u64, b: u64) -> EdgeEvent {
        EdgeEvent { op, edge: Edge::new(a, b) }
    }

    #[test]
    fn triangle_lifecycle() {
        let mut c = ExactCounter::new(Pattern::Triangle);
        assert_eq!(c.apply(ev(Op::Insert, 1, 2)).unwrap(), 0);
        assert_eq!(c.apply(ev(Op::Insert, 2, 3)).unwrap(), 0);
        assert_eq!(c.apply(ev(Op::Insert, 1, 3)).unwrap(), 1);
        assert_eq!(c.apply(ev(Op::Insert, 3, 4)).unwrap(), 1);
        assert_eq!(c.apply(ev(Op::Insert, 1, 4)).unwrap(), 2);
        assert_eq!(c.apply(ev(Op::Delete, 1, 3)).unwrap(), 0);
        assert_eq!(c.apply(ev(Op::Insert, 1, 3)).unwrap(), 2);
        assert_eq!(c.events_applied(), 7);
    }

    #[test]
    fn wedge_star() {
        // Star with k leaves has C(k,2) wedges.
        let mut c = ExactCounter::new(Pattern::Wedge);
        for leaf in 1..=5u64 {
            c.apply(EdgeEvent::insert(Edge::new(0, leaf))).unwrap();
        }
        assert_eq!(c.count(), 10);
        c.apply(ev(Op::Delete, 0, 1)).unwrap();
        assert_eq!(c.count(), 6);
    }

    #[test]
    fn four_clique_k5() {
        // K5 contains C(5,4) = 5 four-cliques.
        let mut c = ExactCounter::new(Pattern::FourClique);
        for a in 0..5u64 {
            for b in (a + 1)..5 {
                c.apply(EdgeEvent::insert(Edge::new(a, b))).unwrap();
            }
        }
        assert_eq!(c.count(), 5);
        // K5 contains exactly one 5-clique.
        let mut g = Adjacency::new();
        for a in 0..5u64 {
            for b in (a + 1)..5 {
                g.insert(Edge::new(a, b));
            }
        }
        assert_eq!(count_static(Pattern::Clique(5), &g), 1);
        assert_eq!(count_static(Pattern::Triangle, &g), 10);
        assert_eq!(count_static(Pattern::Wedge, &g), 30);
    }

    #[test]
    fn infeasible_events_detected() {
        let mut c = ExactCounter::new(Pattern::Triangle);
        c.apply(ev(Op::Insert, 1, 2)).unwrap();
        let err = c.apply(ev(Op::Insert, 1, 2)).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.to_string().contains("already-present"));
        let err = c.apply(ev(Op::Delete, 3, 4)).unwrap_err();
        assert!(err.to_string().contains("absent"));
    }

    #[test]
    fn count_stream_one_shot() {
        let events = vec![
            ev(Op::Insert, 1, 2),
            ev(Op::Insert, 2, 3),
            ev(Op::Insert, 1, 3),
            ev(Op::Delete, 2, 3),
        ];
        assert_eq!(ExactCounter::count_stream(Pattern::Triangle, events).unwrap(), 0);
    }

    /// Generates a feasible random stream over a small vertex universe:
    /// inserts when absent, deletes when present, with given probability.
    fn feasible_stream(seed: Vec<(u64, u64, bool)>) -> Vec<EdgeEvent> {
        let mut present = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (a, b, want_delete) in seed {
            let Some(e) = Edge::try_new(a, b) else { continue };
            if present.contains(&e) {
                if want_delete {
                    present.remove(&e);
                    out.push(EdgeEvent::delete(e));
                }
            } else if !want_delete {
                present.insert(e);
                out.push(EdgeEvent::insert(e));
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Incremental count equals a from-scratch recount of the final
        /// graph at every prefix length.
        #[test]
        fn prop_incremental_equals_recount(
            seed in proptest::collection::vec((0u64..10, 0u64..10, any::<bool>()), 0..120),
        ) {
            let events = feasible_stream(seed);
            for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique] {
                let mut c = ExactCounter::new(p);
                for &ev in &events {
                    c.apply(ev).unwrap();
                    let recount = count_static(p, c.graph());
                    prop_assert_eq!(c.count(), recount, "pattern {:?}", p);
                }
            }
        }
    }
}
