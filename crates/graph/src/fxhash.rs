//! A fixed, fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The hot paths of every sampler hash vertex ids (`u64`) and canonical
//! edges (two `u64`s) millions of times per run. The standard library's
//! SipHash is robust against HashDoS but measurably slow for such keys
//! (see the Rust Performance Book, "Hashing"). The de-facto standard
//! replacement, `rustc-hash`, is not on this project's allowed dependency
//! list, so we vendor the same ~40-line algorithm (Fx hash, as used by the
//! Rust compiler itself) here.
//!
//! HashDoS resistance is irrelevant in this crate: all keys originate from
//! trusted local generators or datasets, never from adversarial input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hash (the golden-ratio-derived
/// constant used by Firefox and rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a word-at-a-time rotate-xor-multiply hasher.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Process 8-byte chunks, then the remainder as a single word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; deterministic (no per-map seeding).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u64, 2u64)), hash_of(&(1u64, 2u64)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that the mixing does
        // something: sequential keys should not collide.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_distinctness() {
        // write() on a byte slice and write_u64 need not agree, but both
        // must be usable; check that strings hash without panicking and
        // unequal strings get (overwhelmingly likely) unequal hashes.
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgi"));
        // Cover the remainder path (non-multiple-of-8 lengths).
        assert_ne!(hash_of(&"abcdefghi"), hash_of(&"abcdefghj"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
        assert_eq!(m.len(), 1000);
    }
}
