//! Subgraph patterns and *completion enumeration*.
//!
//! Every estimator in the paper (Algorithm 2 for WSD, the GPS/GPS-A
//! estimators, and the uniform baselines) is driven by one kernel: given a
//! graph `G` (the sampled graph or the full graph) and an edge `e = (u,v)`
//! *not currently in* `G`, enumerate the instances of the pattern `H` that
//! would be completed by adding `e` — i.e. instances of `H` in `G ∪ {e}`
//! that contain `e`. The same kernel also measures destroyed instances:
//! the instances containing `e` in a graph that currently holds `e` are
//! exactly the instances completed by re-adding `e` to `G \ {e}`.
//!
//! Enumeration yields the partner edges as dense **edge IDs** straight
//! out of the adjacency arena ([`crate::adjacency::EdgeId`]): the
//! intersection kernel touches the slots holding the IDs anyway, so the
//! estimators upstream get zero-hash access to per-edge metadata instead
//! of reconstructing `Edge` keys and re-hashing them per partner.
//!
//! [`Pattern::for_each_completed`] is **generic over the callback**
//! (`impl FnMut`), so the estimator's per-instance mass/state closure is
//! fused straight into the galloping intersection kernel — one
//! monomorphised loop per pattern with no per-instance dynamic dispatch.
//! Cold callers that need object-safe dispatch (or would otherwise bloat
//! codegen) use [`Pattern::for_each_completed_dyn`]. The counting kernel
//! [`Pattern::count_completed`] is additionally generic over the
//! adjacency's [`IdPayload`], so the ID-free [`VertexAdjacency`] of the
//! uniform baselines shares it.
//!
//! Supported patterns:
//!
//! * [`Pattern::Wedge`] — length-2 paths (the paper's `∧`).
//! * [`Pattern::Triangle`] — 3-cliques (`△`), with a common-neighbour fast
//!   path.
//! * [`Pattern::FourClique`] — 4-cliques, with a pairwise-adjacency fast
//!   path over common neighbours.
//! * [`Pattern::Clique`]`(k)` — generic k-cliques for `k ≥ 3` via recursive
//!   extension (an extension beyond the paper's evaluation, which stops at
//!   4-cliques).

use crate::adjacency::{Adjacency, AdjacencyBase, CommonEdge, EdgeId, IdPayload};
use crate::edge::{Edge, Vertex};

#[cfg(doc)]
use crate::adjacency::VertexAdjacency;

/// Maximum supported clique order for [`Pattern::Clique`].
///
/// The bound exists only to keep the stack-allocated scratch buffers small;
/// enumeration cost explodes combinatorially long before this limit.
pub const MAX_CLIQUE: u8 = 8;

/// Number of instances per [`InstanceBlock`] — the lane width of the
/// batched emission mode. Four `f64` lanes fill one 256-bit vector
/// register, the widest unit portable chunked autovectorization reliably
/// targets.
pub const BLOCK_LANES: usize = 4;

/// Widest per-instance partner set the batched emission mode serves
/// (wedge 1, triangle 2, 4-clique 5). Patterns whose instances carry
/// more partners — generic cliques of order ≥ 5 — report no
/// [`Pattern::block_width`] and stay on per-instance emission; keeping
/// the bound tight keeps the per-event block (re)initialisation to a
/// couple of cache lines.
pub const MAX_BLOCK_WIDTH: usize = 5;

/// A fixed-width batch of completed pattern instances, emitted by
/// [`Pattern::for_each_completed_blocks`].
///
/// Partner edge IDs are stored **structure-of-arrays**: lane `l` of row
/// `j` holds the `j`-th partner of the block's `l`-th instance, so a
/// consumer walking rows multiplies/compares the same partner position
/// of all [`BLOCK_LANES`] instances with one contiguous load — the
/// layout the vectorized `Π 1/p` kernels chew through. Instances occupy
/// lanes `0..len()` in emission order; lanes past `len()` of a partial
/// (final) block are unspecified and must not be read — consumers run
/// the full-width vector path only on full blocks (`len() ==
/// BLOCK_LANES`) and fall back to per-lane loops on the tail, so sparse
/// events never pay for empty lanes.
#[derive(Clone, Debug)]
pub struct InstanceBlock {
    /// `ids[j][l]` = partner `j` of instance `l` (SoA).
    ids: [[EdgeId; BLOCK_LANES]; MAX_BLOCK_WIDTH],
    /// Partners per instance (fixed per pattern).
    width: u8,
    /// Instances currently in the block (`1..=BLOCK_LANES` at emission).
    len: u8,
}

impl InstanceBlock {
    fn new(width: usize) -> Self {
        debug_assert!((1..=MAX_BLOCK_WIDTH).contains(&width));
        Self { ids: [[0; BLOCK_LANES]; MAX_BLOCK_WIDTH], width: width as u8, len: 0 }
    }

    /// Number of instances in the block (`1..=BLOCK_LANES` when emitted).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no instance has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Partners per instance (`|H| − 1` of the emitting pattern).
    #[inline]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// The `j`-th partner of every lane, as one contiguous row. Entries
    /// past [`InstanceBlock::len`] are unspecified (see the type docs);
    /// only full blocks should be consumed row-wise.
    #[inline]
    pub fn lane_ids(&self, j: usize) -> &[EdgeId; BLOCK_LANES] {
        &self.ids[j]
    }

    /// The `j`-th partner of instance `lane`.
    #[inline]
    pub fn id(&self, j: usize, lane: usize) -> EdgeId {
        self.ids[j][lane]
    }

    /// Appends a single-partner instance (wedge lane fill).
    #[inline]
    fn push1(&mut self, a: EdgeId) -> bool {
        debug_assert_eq!(self.width, 1);
        let lane = self.len as usize;
        self.ids[0][lane] = a;
        self.len += 1;
        self.len as usize == BLOCK_LANES
    }

    /// Appends a two-partner instance (triangle lane fill).
    #[inline]
    fn push2(&mut self, a: EdgeId, b: EdgeId) -> bool {
        debug_assert_eq!(self.width, 2);
        let lane = self.len as usize;
        self.ids[0][lane] = a;
        self.ids[1][lane] = b;
        self.len += 1;
        self.len as usize == BLOCK_LANES
    }

    /// Appends a five-partner instance (4-clique lane fill).
    #[inline]
    #[allow(clippy::many_single_char_names)]
    fn push5(&mut self, a: EdgeId, b: EdgeId, c: EdgeId, d: EdgeId, e: EdgeId) -> bool {
        debug_assert_eq!(self.width, 5);
        let lane = self.len as usize;
        self.ids[0][lane] = a;
        self.ids[1][lane] = b;
        self.ids[2][lane] = c;
        self.ids[3][lane] = d;
        self.ids[4][lane] = e;
        self.len += 1;
        self.len as usize == BLOCK_LANES
    }

    fn reset(&mut self) {
        self.len = 0;
    }
}

/// A subgraph pattern `H`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Pattern {
    /// A path with two edges (three vertices), a.k.a. length-2 path.
    Wedge,
    /// A 3-clique.
    Triangle,
    /// A 4-clique.
    FourClique,
    /// A k-clique for arbitrary `3 ≤ k ≤ MAX_CLIQUE`. `Clique(3)` and
    /// `Clique(4)` behave identically to the dedicated variants (which are
    /// fast paths kept for clarity and benchmarking).
    Clique(u8),
}

impl Pattern {
    /// Number of edges `|H|` in the pattern (used for the state dimension
    /// `|H| + 3` of the RL policy and the `M ≥ |H|` requirement of the
    /// unbiasedness theorems).
    #[inline]
    pub fn num_edges(&self) -> usize {
        match self {
            Pattern::Wedge => 2,
            Pattern::Triangle => 3,
            Pattern::FourClique => 6,
            Pattern::Clique(k) => {
                let k = *k as usize;
                k * (k - 1) / 2
            }
        }
    }

    /// Number of vertices in the pattern.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        match self {
            Pattern::Wedge => 3,
            Pattern::Triangle => 3,
            Pattern::FourClique => 4,
            Pattern::Clique(k) => *k as usize,
        }
    }

    /// A short human-readable name (used in experiment tables).
    pub fn name(&self) -> String {
        match self {
            Pattern::Wedge => "wedge".into(),
            Pattern::Triangle => "triangle".into(),
            Pattern::FourClique => "4-clique".into(),
            Pattern::Clique(k) => format!("{k}-clique"),
        }
    }

    /// Validates the pattern parameters (clique order bounds).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Pattern::Clique(k) if *k < 3 => Err(format!("clique order must be ≥ 3, got {k}")),
            Pattern::Clique(k) if *k > MAX_CLIQUE => {
                Err(format!("clique order must be ≤ {MAX_CLIQUE}, got {k}"))
            }
            _ => Ok(()),
        }
    }

    /// Counts the instances of `self` completed by adding `e` to `g`.
    ///
    /// `g` must not currently contain `e`; instances are those of
    /// `g ∪ {e}` that use `e`. This is the exact-count kernel; it avoids
    /// materialising partner edges and never touches edge IDs, so it runs
    /// on the ID-free [`VertexAdjacency`] as well as the arena-tracked
    /// [`Adjacency`] — one monomorphised copy per adjacency flavour.
    pub fn count_completed<P: IdPayload>(
        &self,
        g: &AdjacencyBase<P>,
        e: Edge,
        scratch: &mut EnumScratch,
    ) -> u64 {
        match self {
            Pattern::Wedge => {
                let (u, v) = e.endpoints();
                // Wedges centred at u pair e with each other edge at u;
                // same at v. Exclude the opposite endpoint in case callers
                // pass a graph that already contains e. Degrees make this
                // O(1) — no neighbourhood walk.
                let present = usize::from(g.adjacent(u, v));
                let du = g.degree(u) - present;
                let dv = g.degree(v) - present;
                (du + dv) as u64
            }
            Pattern::Triangle | Pattern::Clique(3) => {
                let (u, v) = e.endpoints();
                g.common_neighbor_count(u, v) as u64
            }
            Pattern::FourClique | Pattern::Clique(4) => {
                let (u, v) = e.endpoints();
                g.common_neighbors_into(u, v, &mut scratch.common);
                let c = &scratch.common;
                let mut n = 0u64;
                for (i, &w) in c.iter().enumerate() {
                    // One neighbourhood resolution per outer vertex; the
                    // inner loop is pure dense membership scans.
                    let nw = g.neighborhood(w);
                    for &x in &c[(i + 1)..] {
                        if nw.contains(x) {
                            n += 1;
                        }
                    }
                }
                n
            }
            Pattern::Clique(k) => {
                let (u, v) = e.endpoints();
                let need = (*k - 2) as usize;
                g.common_neighbors_into(u, v, &mut scratch.common);
                scratch.common.sort_unstable();
                let cand0 = std::mem::take(&mut scratch.common);
                scratch.clique_cur.clear();
                let mut n = 0u64;
                clique_extend(g, &cand0, need, scratch, &mut |_| n += 1);
                scratch.common = cand0;
                n
            }
        }
    }

    /// Streams the partner edge ID of every wedge completed by adding
    /// `e` to `g` — the wedge kernel's exact instances and emission
    /// order (`u`'s slots, then `v`'s) without the partner-slice or
    /// block plumbing. A wedge instance has exactly one partner edge,
    /// so mass-only consumers can fold over the IDs directly; the block
    /// fill, prime pass and unit-product chains of the width-1 lane
    /// path are pure overhead for them. Returns the endpoint degrees,
    /// as the full kernels do.
    pub fn for_each_wedge_partner(
        g: &Adjacency,
        e: Edge,
        mut f: impl FnMut(EdgeId),
    ) -> (usize, usize) {
        let (u, v) = e.endpoints();
        let (us, ids_u) = g.neighbor_entries(u);
        for (i, &w) in us.iter().enumerate() {
            if w != v {
                f(ids_u[i]);
            }
        }
        let (vs, ids_v) = g.neighbor_entries(v);
        for (i, &w) in vs.iter().enumerate() {
            if w != u {
                f(ids_v[i]);
            }
        }
        (us.len(), vs.len())
    }

    /// Enumerates the instances of `self` completed by adding `e` to `g`,
    /// invoking `f` once per instance with the *partner edges* — the
    /// instance's edges excluding `e` itself (the `J \ e_t` of Algorithm
    /// 2) — as arena edge IDs. Partner slices are only valid during the
    /// callback; resolve endpoints with [`Adjacency::edge_endpoints`] if
    /// needed.
    ///
    /// The callback is a generic `impl FnMut`, so hot callers (the
    /// estimator mass loop, the WRS instance weigher) get one fused,
    /// monomorphised kernel per pattern — the per-instance work inlines
    /// into the intersection loop itself. Use
    /// [`Pattern::for_each_completed_dyn`] where object-safe dispatch is
    /// preferred.
    ///
    /// Returns the degrees of `e`'s endpoints in `g` — a free by-product
    /// of the neighbourhood lookups enumeration performs anyway, saving
    /// the state extraction (Eq. 19–22) two hash probes per event.
    pub fn for_each_completed(
        &self,
        g: &Adjacency,
        e: Edge,
        scratch: &mut EnumScratch,
        mut f: impl FnMut(&[EdgeId]),
    ) -> (usize, usize) {
        let (u, v) = e.endpoints();
        match self {
            Pattern::Wedge => Pattern::for_each_wedge_partner(g, e, |id| {
                let partner = [id];
                f(&partner);
            }),
            Pattern::Triangle | Pattern::Clique(3) => {
                // Stream instances straight out of the intersection — no
                // scratch materialisation; each hit's two partner IDs go
                // directly into the callback.
                let mut partner = [0 as EdgeId; 2];
                g.for_each_common_edge(u, v, |_, eu, ev| {
                    partner[0] = eu;
                    partner[1] = ev;
                    f(&partner);
                })
            }
            Pattern::FourClique | Pattern::Clique(4) => {
                let degs = g.common_edges_into(u, v, &mut scratch.common_edges);
                let c = &scratch.common_edges;
                let mut partner = [0 as EdgeId; 5];
                for (i, ci) in c.iter().enumerate() {
                    // One neighbourhood resolution per outer vertex; the
                    // inner pair probes are dense finds carrying the
                    // (w,x) partner ID out on hits.
                    let nw = g.neighborhood(ci.w);
                    for cj in &c[(i + 1)..] {
                        if let Some(wx) = nw.id_of(cj.w) {
                            partner[0] = ci.eu;
                            partner[1] = ci.ev;
                            partner[2] = cj.eu;
                            partner[3] = cj.ev;
                            partner[4] = wx;
                            f(&partner);
                        }
                    }
                }
                degs
            }
            Pattern::Clique(k) => {
                let need = (*k - 2) as usize;
                let degs = g.common_edges_into(u, v, &mut scratch.common_edges);
                scratch.common_edges.sort_unstable_by_key(|c| c.w);
                let common = std::mem::take(&mut scratch.common_edges);
                let mut cand0 = std::mem::take(&mut scratch.common);
                cand0.clear();
                cand0.extend(common.iter().map(|c| c.w));
                scratch.clique_cur.clear();
                // Reuse the scratch partner buffer across instances —
                // the per-instance Vec allocation here used to dominate
                // generic-clique enumeration cost.
                let mut partner = std::mem::take(&mut scratch.partner);
                clique_extend(g, &cand0, need, scratch, &mut |chosen| {
                    // Materialise all edges among {u, v} ∪ chosen except
                    // e. The (u,w)/(v,w) IDs come from the sorted common
                    // triples (binary search by w — `chosen` preserves
                    // the sorted order); chosen-chosen IDs need one
                    // membership probe each, which the recursion's
                    // adjacency filter paid for anyway.
                    partner.clear();
                    for &w in chosen {
                        let ce = common[common
                            .binary_search_by_key(&w, |c| c.w)
                            .expect("chosen vertex is a common neighbour")];
                        partner.push(ce.eu);
                        partner.push(ce.ev);
                    }
                    for i in 0..chosen.len() {
                        for j in (i + 1)..chosen.len() {
                            let id = g
                                .edge_id_between(chosen[i], chosen[j])
                                .expect("clique extension vertices are adjacent");
                            partner.push(id);
                        }
                    }
                    f(&partner);
                });
                scratch.partner = partner;
                scratch.common = cand0;
                scratch.common_edges = common;
                degs
            }
        }
    }

    /// Partner count per instance when the pattern fits the batched
    /// emission mode: `Some(|H| − 1)` iff it is at most
    /// [`MAX_BLOCK_WIDTH`]. Generic cliques of order ≥ 5 return `None`
    /// and must be enumerated per instance.
    #[inline]
    pub fn block_width(&self) -> Option<usize> {
        let w = self.num_edges() - 1;
        (w <= MAX_BLOCK_WIDTH).then_some(w)
    }

    /// Batched emission mode of [`Pattern::for_each_completed`]: the
    /// same instances, in the same order, but delivered in
    /// [`InstanceBlock`]s of up to [`BLOCK_LANES`] consecutive instances
    /// (SoA partner-ID lanes) instead of one callback per instance —
    /// the shape the vectorized estimator mass kernels consume. The
    /// final block of an event may be partial (`len() < BLOCK_LANES`);
    /// its unused lanes are unspecified per the [`InstanceBlock`]
    /// contract.
    ///
    /// Returns the endpoint degrees, as the per-instance mode does.
    ///
    /// # Panics
    ///
    /// Panics if [`Pattern::block_width`] is `None` (instances too wide
    /// for a block); callers gate on it and fall back to per-instance
    /// emission.
    pub fn for_each_completed_blocks(
        &self,
        g: &Adjacency,
        e: Edge,
        scratch: &mut EnumScratch,
        mut f: impl FnMut(&InstanceBlock),
    ) -> (usize, usize) {
        let width = self.block_width().expect("pattern instances too wide for block emission");
        let mut block = InstanceBlock::new(width);
        let (u, v) = e.endpoints();
        // Every blockable pattern fills lanes straight out of its
        // intersection kernel — no per-instance partner-slice bounce.
        let degs = match self {
            Pattern::Wedge => {
                let (us, ids_u) = g.neighbor_entries(u);
                for (i, &w) in us.iter().enumerate() {
                    if w != v && block.push1(ids_u[i]) {
                        f(&block);
                        block.reset();
                    }
                }
                let (vs, ids_v) = g.neighbor_entries(v);
                for (i, &w) in vs.iter().enumerate() {
                    if w != u && block.push1(ids_v[i]) {
                        f(&block);
                        block.reset();
                    }
                }
                (us.len(), vs.len())
            }
            Pattern::Triangle | Pattern::Clique(3) => g.for_each_common_edge(u, v, |_, eu, ev| {
                if block.push2(eu, ev) {
                    f(&block);
                    block.reset();
                }
            }),
            Pattern::FourClique | Pattern::Clique(4) => {
                let degs = g.common_edges_into(u, v, &mut scratch.common_edges);
                let c = &scratch.common_edges;
                for (i, ci) in c.iter().enumerate() {
                    let nw = g.neighborhood(ci.w);
                    for cj in &c[(i + 1)..] {
                        if let Some(wx) = nw.id_of(cj.w) {
                            if block.push5(ci.eu, ci.ev, cj.eu, cj.ev, wx) {
                                f(&block);
                                block.reset();
                            }
                        }
                    }
                }
                degs
            }
            // Clique(3)/Clique(4) matched the fast arms above; wider
            // cliques have no block_width and panicked at the gate (the
            // Lanes kernel serves them through its scalar fallback).
            Pattern::Clique(_) => unreachable!("unblockable clique passed block_width gating"),
        };
        if !block.is_empty() {
            f(&block);
        }
        degs
    }

    /// Object-safe shim over [`Pattern::for_each_completed`] for cold
    /// callers: dispatches the callback through a `&mut dyn FnMut`
    /// instead of monomorphising the kernel per closure, trading
    /// per-instance indirect calls for one shared instantiation.
    pub fn for_each_completed_dyn(
        &self,
        g: &Adjacency,
        e: Edge,
        scratch: &mut EnumScratch,
        f: &mut dyn FnMut(&[EdgeId]),
    ) -> (usize, usize) {
        self.for_each_completed(g, e, scratch, f)
    }
}

/// The set of nesting levels a **layered** enumeration pass emits:
/// wedges, triangles and 4-cliques share one walk per event because the
/// patterns nest — every 4-clique pair-probe runs over the same common
/// neighbourhood the triangle kernel intersects, and the wedge kernel
/// walks the same endpoint neighbourhoods. A multi-query session unions
/// its queries' levels into one `LayeredLevels` and runs
/// [`LayeredLevels::for_each_completed`] (or the block/count modes)
/// once per event instead of one per-pattern pass per query.
///
/// Levels are dense indices ([`LayeredLevels::WEDGE`] = 0,
/// [`LayeredLevels::TRIANGLE`] = 1, [`LayeredLevels::FOUR_CLIQUE`] = 2)
/// so consumers can accumulate per-level results in a flat `[T; 3]`.
/// Patterns wider than a 4-clique don't nest into this ladder
/// ([`LayeredLevels::level_of`] returns `None`) and stay on the
/// per-pattern kernels.
///
/// **Emission contract:** at each level the instances, their partner-ID
/// order *and* their relative order are exactly those of the
/// corresponding per-pattern kernel ([`Pattern::for_each_completed`] /
/// [`Pattern::for_each_completed_blocks`]). Levels are emitted in
/// ascending order (all wedges, then all triangles, then all
/// 4-cliques). Estimators sum per level, so this makes a layered pass
/// bit-identical to the per-pattern passes it replaces — the shared
/// walk is a pure cost optimisation, never a numeric one. The shared
/// work is real: when both the triangle and 4-clique levels are active
/// the galloping hub–hub intersection runs **once**, filling the
/// common-edge buffer that the triangle level replays (the buffer fill
/// *is* the streaming intersection callback, same hits in the same
/// order) and the 4-clique level pair-probes.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct LayeredLevels {
    /// Emit wedge instances (level [`LayeredLevels::WEDGE`]).
    pub wedge: bool,
    /// Emit triangle instances (level [`LayeredLevels::TRIANGLE`]).
    pub triangle: bool,
    /// Emit 4-clique instances (level [`LayeredLevels::FOUR_CLIQUE`]).
    pub four_clique: bool,
}

impl LayeredLevels {
    /// Level index of wedge instances.
    pub const WEDGE: usize = 0;
    /// Level index of triangle instances.
    pub const TRIANGLE: usize = 1;
    /// Level index of 4-clique instances.
    pub const FOUR_CLIQUE: usize = 2;
    /// Number of levels in the ladder (the length of per-level arrays).
    pub const COUNT: usize = 3;

    /// The level a pattern's instances are served at, or `None` if the
    /// pattern doesn't nest into the wedge→triangle→4-clique ladder
    /// (generic cliques of order ≥ 5).
    #[inline]
    pub fn level_of(pattern: Pattern) -> Option<usize> {
        match pattern {
            Pattern::Wedge => Some(Self::WEDGE),
            Pattern::Triangle | Pattern::Clique(3) => Some(Self::TRIANGLE),
            Pattern::FourClique | Pattern::Clique(4) => Some(Self::FOUR_CLIQUE),
            Pattern::Clique(_) => None,
        }
    }

    /// The canonical pattern emitted at `level` (used to recover widths
    /// and for differential testing against the per-pattern kernels).
    #[inline]
    pub fn pattern_at(level: usize) -> Pattern {
        match level {
            Self::WEDGE => Pattern::Wedge,
            Self::TRIANGLE => Pattern::Triangle,
            Self::FOUR_CLIQUE => Pattern::FourClique,
            _ => panic!("no such layered level: {level}"),
        }
    }

    /// Marks `level` active.
    #[inline]
    pub fn set(&mut self, level: usize) {
        match level {
            Self::WEDGE => self.wedge = true,
            Self::TRIANGLE => self.triangle = true,
            Self::FOUR_CLIQUE => self.four_clique = true,
            _ => panic!("no such layered level: {level}"),
        }
    }

    /// True iff `level` is active.
    #[inline]
    pub fn active(&self, level: usize) -> bool {
        match level {
            Self::WEDGE => self.wedge,
            Self::TRIANGLE => self.triangle,
            Self::FOUR_CLIQUE => self.four_clique,
            _ => false,
        }
    }

    /// True iff no level is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !(self.wedge || self.triangle || self.four_clique)
    }

    /// Layered analogue of [`Pattern::for_each_completed`]: one pass
    /// over `g`'s neighbourhoods enumerating, for every active level,
    /// the instances completed by adding `e` — invoking
    /// `f(level, partner_ids)` per instance. Per level, instances and
    /// their order are exactly those of the per-pattern kernel; levels
    /// are emitted in ascending order. Returns the endpoint degrees, as
    /// the per-pattern kernels do.
    pub fn for_each_completed(
        &self,
        g: &Adjacency,
        e: Edge,
        scratch: &mut EnumScratch,
        mut f: impl FnMut(usize, &[EdgeId]),
    ) -> (usize, usize) {
        let (u, v) = e.endpoints();
        let mut degs = (g.degree(u), g.degree(v));
        if self.wedge {
            let mut partner = [0 as EdgeId];
            let (us, ids_u) = g.neighbor_entries(u);
            for (i, &w) in us.iter().enumerate() {
                if w != v {
                    partner[0] = ids_u[i];
                    f(Self::WEDGE, &partner);
                }
            }
            let (vs, ids_v) = g.neighbor_entries(v);
            for (i, &w) in vs.iter().enumerate() {
                if w != u {
                    partner[0] = ids_v[i];
                    f(Self::WEDGE, &partner);
                }
            }
            degs = (us.len(), vs.len());
        }
        match (self.triangle, self.four_clique) {
            (true, false) => {
                let mut partner = [0 as EdgeId; 2];
                degs = g.for_each_common_edge(u, v, |_, eu, ev| {
                    partner[0] = eu;
                    partner[1] = ev;
                    f(Self::TRIANGLE, &partner);
                });
            }
            (_, true) => {
                // One galloped intersection serves both upper levels:
                // the buffer fill is the streaming callback, so the
                // triangle replay sees the same hits in the same order.
                degs = g.common_edges_into(u, v, &mut scratch.common_edges);
                let c = &scratch.common_edges;
                if self.triangle {
                    let mut partner = [0 as EdgeId; 2];
                    for ci in c {
                        partner[0] = ci.eu;
                        partner[1] = ci.ev;
                        f(Self::TRIANGLE, &partner);
                    }
                }
                let mut partner = [0 as EdgeId; 5];
                for (i, ci) in c.iter().enumerate() {
                    let nw = g.neighborhood(ci.w);
                    for cj in &c[(i + 1)..] {
                        if let Some(wx) = nw.id_of(cj.w) {
                            partner[0] = ci.eu;
                            partner[1] = ci.ev;
                            partner[2] = cj.eu;
                            partner[3] = cj.ev;
                            partner[4] = wx;
                            f(Self::FOUR_CLIQUE, &partner);
                        }
                    }
                }
            }
            (false, false) => {}
        }
        degs
    }

    /// Layered analogue of [`Pattern::for_each_completed_blocks`]: the
    /// same instances as [`LayeredLevels::for_each_completed`], in the
    /// same order, delivered per level in [`InstanceBlock`]s — each
    /// level fills its own block (widths differ) and flushes its tail
    /// before the next level starts, so per-level block boundaries
    /// match the per-pattern block kernel exactly.
    pub fn for_each_completed_blocks(
        &self,
        g: &Adjacency,
        e: Edge,
        scratch: &mut EnumScratch,
        mut f: impl FnMut(usize, &InstanceBlock),
    ) -> (usize, usize) {
        let (u, v) = e.endpoints();
        let mut degs = (g.degree(u), g.degree(v));
        if self.wedge {
            let mut block = InstanceBlock::new(1);
            let (us, ids_u) = g.neighbor_entries(u);
            for (i, &w) in us.iter().enumerate() {
                if w != v && block.push1(ids_u[i]) {
                    f(Self::WEDGE, &block);
                    block.reset();
                }
            }
            let (vs, ids_v) = g.neighbor_entries(v);
            for (i, &w) in vs.iter().enumerate() {
                if w != u && block.push1(ids_v[i]) {
                    f(Self::WEDGE, &block);
                    block.reset();
                }
            }
            if !block.is_empty() {
                f(Self::WEDGE, &block);
            }
            degs = (us.len(), vs.len());
        }
        match (self.triangle, self.four_clique) {
            (true, false) => {
                let mut block = InstanceBlock::new(2);
                degs = g.for_each_common_edge(u, v, |_, eu, ev| {
                    if block.push2(eu, ev) {
                        f(Self::TRIANGLE, &block);
                        block.reset();
                    }
                });
                if !block.is_empty() {
                    f(Self::TRIANGLE, &block);
                }
            }
            (_, true) => {
                degs = g.common_edges_into(u, v, &mut scratch.common_edges);
                let c = &scratch.common_edges;
                if self.triangle {
                    let mut block = InstanceBlock::new(2);
                    for ci in c {
                        if block.push2(ci.eu, ci.ev) {
                            f(Self::TRIANGLE, &block);
                            block.reset();
                        }
                    }
                    if !block.is_empty() {
                        f(Self::TRIANGLE, &block);
                    }
                }
                let mut block = InstanceBlock::new(5);
                for (i, ci) in c.iter().enumerate() {
                    let nw = g.neighborhood(ci.w);
                    for cj in &c[(i + 1)..] {
                        if let Some(wx) = nw.id_of(cj.w) {
                            if block.push5(ci.eu, ci.ev, cj.eu, cj.ev, wx) {
                                f(Self::FOUR_CLIQUE, &block);
                                block.reset();
                            }
                        }
                    }
                }
                if !block.is_empty() {
                    f(Self::FOUR_CLIQUE, &block);
                }
            }
            (false, false) => {}
        }
        degs
    }

    /// Layered analogue of [`Pattern::count_completed`]: per-level
    /// completion counts from one pass (inactive levels report 0).
    /// Generic over the adjacency payload so the ID-free
    /// [`VertexAdjacency`] of the uniform baselines shares it. When
    /// both upper levels are active the common neighbourhood is
    /// materialised once and serves both the triangle count (its
    /// length) and the 4-clique pair probes.
    pub fn count_completed<P: IdPayload>(
        &self,
        g: &AdjacencyBase<P>,
        e: Edge,
        scratch: &mut EnumScratch,
    ) -> [u64; Self::COUNT] {
        let (u, v) = e.endpoints();
        let mut counts = [0u64; Self::COUNT];
        if self.wedge {
            let present = usize::from(g.adjacent(u, v));
            let du = g.degree(u) - present;
            let dv = g.degree(v) - present;
            counts[Self::WEDGE] = (du + dv) as u64;
        }
        if self.four_clique {
            g.common_neighbors_into(u, v, &mut scratch.common);
            let c = &scratch.common;
            if self.triangle {
                counts[Self::TRIANGLE] = c.len() as u64;
            }
            let mut n = 0u64;
            for (i, &w) in c.iter().enumerate() {
                let nw = g.neighborhood(w);
                for &x in &c[(i + 1)..] {
                    if nw.contains(x) {
                        n += 1;
                    }
                }
            }
            counts[Self::FOUR_CLIQUE] = n;
        } else if self.triangle {
            counts[Self::TRIANGLE] = g.common_neighbor_count(u, v) as u64;
        }
        counts
    }
}

/// Reusable scratch buffers for pattern enumeration; create one per
/// counter/thread and pass it to every call to avoid per-event allocation.
#[derive(Default, Clone, Debug)]
pub struct EnumScratch {
    /// Common-neighbour vertices (counting fast paths; doubles as the
    /// level-0 candidate buffer of the generic-clique kernels).
    common: Vec<Vertex>,
    /// Common neighbours with partner edge IDs (enumeration paths),
    /// sorted by vertex inside the generic-clique kernel.
    common_edges: Vec<CommonEdge>,
    clique_cand: Vec<Vec<Vertex>>,
    clique_cur: Vec<Vertex>,
    /// Partner-ID buffer reused across generic-clique instances.
    partner: Vec<EdgeId>,
}

/// Recursive k-clique extension shared by the counting and enumeration
/// kernels: finds all `need`-subsets `S` of `cand` (the sorted common
/// neighbourhood of `e`'s endpoints) such that `S` induces a clique,
/// invoking `f(S)`. `S` is yielded in increasing vertex order so each
/// instance is produced exactly once. Generic over the adjacency payload
/// — only membership probes are performed; the enumeration caller
/// resolves IDs in its callback.
fn clique_extend<P: IdPayload>(
    g: &AdjacencyBase<P>,
    cand0: &[Vertex],
    need: usize,
    scratch: &mut EnumScratch,
    f: &mut dyn FnMut(&[Vertex]),
) {
    if scratch.clique_cand.is_empty() {
        scratch.clique_cand.resize(MAX_CLIQUE as usize, Vec::new());
    }
    return recurse(g, cand0, need, scratch, f);

    fn recurse<P: IdPayload>(
        g: &AdjacencyBase<P>,
        cand: &[Vertex],
        need: usize,
        scratch: &mut EnumScratch,
        f: &mut dyn FnMut(&[Vertex]),
    ) {
        if need == 0 {
            f(&scratch.clique_cur);
            return;
        }
        if cand.len() < need {
            return;
        }
        for (i, &w) in cand.iter().enumerate() {
            scratch.clique_cur.push(w);
            if need == 1 {
                f(&scratch.clique_cur);
            } else {
                // Next candidates: later vertices adjacent to w.
                let depth = scratch.clique_cur.len();
                let mut next = std::mem::take(&mut scratch.clique_cand[depth]);
                next.clear();
                next.extend(cand[i + 1..].iter().copied().filter(|&x| g.adjacent(w, x)));
                recurse(g, &next, need - 1, scratch, f);
                scratch.clique_cand[depth] = next;
            }
            scratch.clique_cur.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::VertexAdjacency;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn graph(edges: &[(Vertex, Vertex)]) -> Adjacency {
        let mut g = Adjacency::new();
        for &(a, b) in edges {
            g.insert(Edge::new(a, b));
        }
        g
    }

    fn count(p: Pattern, g: &Adjacency, e: Edge) -> u64 {
        let mut s = EnumScratch::default();
        p.count_completed(g, e, &mut s)
    }

    /// Enumerates partner sets, resolving edge IDs back to edges through
    /// the arena.
    fn enumerate(p: Pattern, g: &Adjacency, e: Edge) -> Vec<BTreeSet<Edge>> {
        let mut s = EnumScratch::default();
        let mut out = Vec::new();
        p.for_each_completed(g, e, &mut s, |partners| {
            out.push(partners.iter().map(|&id| g.edge_endpoints(id)).collect());
        });
        out
    }

    #[test]
    fn pattern_sizes() {
        assert_eq!(Pattern::Wedge.num_edges(), 2);
        assert_eq!(Pattern::Triangle.num_edges(), 3);
        assert_eq!(Pattern::FourClique.num_edges(), 6);
        assert_eq!(Pattern::Clique(5).num_edges(), 10);
        assert_eq!(Pattern::Wedge.num_vertices(), 3);
        assert_eq!(Pattern::Clique(6).num_vertices(), 6);
    }

    #[test]
    fn validation() {
        assert!(Pattern::Clique(2).validate().is_err());
        assert!(Pattern::Clique(3).validate().is_ok());
        assert!(Pattern::Clique(MAX_CLIQUE + 1).validate().is_err());
        assert!(Pattern::Wedge.validate().is_ok());
    }

    #[test]
    fn wedge_completion() {
        // Star: 1 connected to 2,3,4. Adding (2,3) completes wedges
        // centred at 2 (via edge 1-2? no: centred at 2 pairs (2,3) with
        // edges at 2, i.e. (1,2)) and at 3 ((1,3)).
        let g = graph(&[(1, 2), (1, 3), (1, 4)]);
        let e = Edge::new(2, 3);
        assert_eq!(count(Pattern::Wedge, &g, e), 2);
        let inst = enumerate(Pattern::Wedge, &g, e);
        assert_eq!(inst.len(), 2);
        assert!(inst.contains(&BTreeSet::from([Edge::new(1, 2)])));
        assert!(inst.contains(&BTreeSet::from([Edge::new(1, 3)])));
    }

    #[test]
    fn triangle_completion() {
        let g = graph(&[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]);
        // Adding (1,4): common neighbours of 1 and 4 are {2,3}.
        let e = Edge::new(1, 4);
        assert_eq!(count(Pattern::Triangle, &g, e), 2);
        let inst = enumerate(Pattern::Triangle, &g, e);
        assert!(inst.contains(&BTreeSet::from([Edge::new(1, 2), Edge::new(2, 4)])));
        assert!(inst.contains(&BTreeSet::from([Edge::new(1, 3), Edge::new(3, 4)])));
    }

    #[test]
    fn four_clique_completion() {
        // K4 minus edge (1,4); adding (1,4) completes exactly one 4-clique.
        let g = graph(&[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]);
        let e = Edge::new(1, 4);
        assert_eq!(count(Pattern::FourClique, &g, e), 1);
        let inst = enumerate(Pattern::FourClique, &g, e);
        assert_eq!(inst.len(), 1);
        assert_eq!(
            inst[0],
            BTreeSet::from([
                Edge::new(1, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
                Edge::new(2, 4),
                Edge::new(3, 4),
            ])
        );
    }

    /// Flattens block emission back into per-instance partner vectors
    /// (dropping pad lanes), for comparison against the per-instance mode.
    fn enumerate_blocked(p: Pattern, g: &Adjacency, e: Edge) -> (Vec<Vec<EdgeId>>, (usize, usize)) {
        let mut s = EnumScratch::default();
        let mut out = Vec::new();
        let degs = p.for_each_completed_blocks(g, e, &mut s, |block| {
            assert!(!block.is_empty() && block.len() <= BLOCK_LANES);
            assert_eq!(block.width(), p.num_edges() - 1);
            for lane in 0..block.len() {
                out.push((0..block.width()).map(|j| block.id(j, lane)).collect());
            }
        });
        (out, degs)
    }

    #[test]
    fn block_emission_matches_per_instance_order_and_degrees() {
        // Hub star closing many triangles at once: 1 is connected to
        // 2..=12, 13 is connected to 2..=12; adding (1,13) completes 11
        // triangles — enough instances for two full blocks + a partial.
        let mut g = Adjacency::new();
        for v in 2..=12u64 {
            g.insert(Edge::new(1, v));
            g.insert(Edge::new(13, v));
        }
        g.insert(Edge::new(2, 3));
        g.insert(Edge::new(2, 4));
        g.insert(Edge::new(3, 4));
        for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(4)] {
            let e = Edge::new(1, 13);
            let mut s = EnumScratch::default();
            let mut per_instance: Vec<Vec<EdgeId>> = Vec::new();
            let degs = p
                .for_each_completed(&g, e, &mut s, |partners| per_instance.push(partners.to_vec()));
            let (blocked, degs_blocked) = enumerate_blocked(p, &g, e);
            assert_eq!(degs_blocked, degs, "{p:?}: degrees must ride along in block mode");
            assert_eq!(blocked, per_instance, "{p:?}: block mode must preserve emission order");
        }
    }

    #[test]
    fn block_emission_partial_and_empty_blocks() {
        // Exactly one completed triangle → a single partial block.
        let g = graph(&[(1, 2), (2, 3)]);
        let (inst, _) = enumerate_blocked(Pattern::Triangle, &g, Edge::new(1, 3));
        assert_eq!(inst.len(), 1);
        // No completions → the callback must never fire.
        let mut s = EnumScratch::default();
        let mut calls = 0;
        Pattern::Triangle.for_each_completed_blocks(&g, Edge::new(5, 6), &mut s, |_| calls += 1);
        assert_eq!(calls, 0, "empty events must not emit a block");
    }

    #[test]
    fn block_width_gates_wide_patterns() {
        assert_eq!(Pattern::Wedge.block_width(), Some(1));
        assert_eq!(Pattern::Triangle.block_width(), Some(2));
        assert_eq!(Pattern::FourClique.block_width(), Some(5));
        assert_eq!(Pattern::Clique(4).block_width(), Some(5));
        assert_eq!(Pattern::Clique(5).block_width(), None, "9 partners exceed MAX_BLOCK_WIDTH");
    }

    /// All 7 non-empty level subsets.
    fn level_subsets() -> Vec<LayeredLevels> {
        let mut out = Vec::new();
        for bits in 1u8..8 {
            out.push(LayeredLevels {
                wedge: bits & 1 != 0,
                triangle: bits & 2 != 0,
                four_clique: bits & 4 != 0,
            });
        }
        out
    }

    /// Per-level instances from a layered pass (instance mode).
    fn enumerate_layered(
        levels: LayeredLevels,
        g: &Adjacency,
        e: Edge,
    ) -> (Vec<Vec<Vec<EdgeId>>>, (usize, usize)) {
        let mut s = EnumScratch::default();
        let mut out: Vec<Vec<Vec<EdgeId>>> = vec![Vec::new(); LayeredLevels::COUNT];
        let mut last_level = 0;
        let degs = levels.for_each_completed(g, e, &mut s, |level, partners| {
            assert!(levels.active(level), "emitted at inactive level {level}");
            assert!(level >= last_level, "levels must be emitted in ascending order");
            last_level = level;
            out[level].push(partners.to_vec());
        });
        (out, degs)
    }

    /// Per-level instances from a layered pass (block mode), flattened.
    fn enumerate_layered_blocked(
        levels: LayeredLevels,
        g: &Adjacency,
        e: Edge,
    ) -> (Vec<Vec<Vec<EdgeId>>>, (usize, usize)) {
        let mut s = EnumScratch::default();
        let mut out: Vec<Vec<Vec<EdgeId>>> = vec![Vec::new(); LayeredLevels::COUNT];
        let degs = levels.for_each_completed_blocks(g, e, &mut s, |level, block| {
            assert!(levels.active(level), "emitted at inactive level {level}");
            assert!(!block.is_empty() && block.len() <= BLOCK_LANES);
            assert_eq!(block.width(), LayeredLevels::pattern_at(level).num_edges() - 1);
            for lane in 0..block.len() {
                out[level].push((0..block.width()).map(|j| block.id(j, lane)).collect());
            }
        });
        (out, degs)
    }

    /// The layered differential harness: on every level subset, the
    /// layered pass (both emission modes) must reproduce each active
    /// level's per-pattern kernel output — same instances, same partner
    /// order, same relative order, same degrees — and the layered count
    /// must match the per-pattern counts. Bit-identity of the session
    /// estimators rests on exactly this contract.
    fn assert_layered_matches_per_pattern(g: &Adjacency, e: Edge) {
        let mut s = EnumScratch::default();
        for levels in level_subsets() {
            let (inst, degs) = enumerate_layered(levels, g, e);
            let (blocked, degs_blocked) = enumerate_layered_blocked(levels, g, e);
            assert_eq!(degs_blocked, degs, "{levels:?}: degrees must agree across modes");
            let counts = levels.count_completed(g, e, &mut s);
            for level in 0..LayeredLevels::COUNT {
                let p = LayeredLevels::pattern_at(level);
                if !levels.active(level) {
                    assert!(inst[level].is_empty(), "{levels:?}: inactive level {level} emitted");
                    assert_eq!(counts[level], 0, "{levels:?}: inactive level {level} counted");
                    continue;
                }
                let mut per_pattern: Vec<Vec<EdgeId>> = Vec::new();
                let degs_ref = p.for_each_completed(g, e, &mut s, |partners| {
                    per_pattern.push(partners.to_vec())
                });
                assert_eq!(degs, degs_ref, "{levels:?}/{p:?}: degree by-product diverged");
                assert_eq!(
                    inst[level], per_pattern,
                    "{levels:?}/{p:?}: layered emission order diverged"
                );
                assert_eq!(
                    blocked[level], per_pattern,
                    "{levels:?}/{p:?}: layered block emission diverged"
                );
                assert_eq!(
                    counts[level],
                    per_pattern.len() as u64,
                    "{levels:?}/{p:?}: layered count diverged"
                );
            }
        }
    }

    #[test]
    fn layered_emission_matches_per_pattern_kernels() {
        // The hub-star stream of the block test: enough triangles for
        // multiple blocks, plus wedges and one 4-clique regime.
        let mut g = Adjacency::new();
        for v in 2..=12u64 {
            g.insert(Edge::new(1, v));
            g.insert(Edge::new(13, v));
        }
        g.insert(Edge::new(2, 3));
        g.insert(Edge::new(2, 4));
        g.insert(Edge::new(3, 4));
        assert_layered_matches_per_pattern(&g, Edge::new(1, 13));
        // A sparse event (no completions at any level) and a dense one.
        assert_layered_matches_per_pattern(&g, Edge::new(40, 41));
        let dense = graph(&[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 5), (4, 5), (3, 5)]);
        assert_layered_matches_per_pattern(&dense, Edge::new(1, 4));
    }

    #[test]
    fn layered_count_runs_on_vertex_only_adjacency() {
        let edges = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 5), (4, 5)];
        let g = graph(&edges);
        let mut lean = VertexAdjacency::new();
        for &(a, b) in &edges {
            lean.insert(Edge::new(a, b));
        }
        let mut s = EnumScratch::default();
        for e in [Edge::new(1, 4), Edge::new(3, 5), Edge::new(2, 5)] {
            for levels in level_subsets() {
                assert_eq!(
                    levels.count_completed(&g, e, &mut s),
                    levels.count_completed(&lean, e, &mut s),
                    "{levels:?} at {e:?}: ID-free layered count diverges"
                );
            }
        }
    }

    #[test]
    fn layered_level_mapping() {
        assert_eq!(LayeredLevels::level_of(Pattern::Wedge), Some(LayeredLevels::WEDGE));
        assert_eq!(LayeredLevels::level_of(Pattern::Triangle), Some(LayeredLevels::TRIANGLE));
        assert_eq!(LayeredLevels::level_of(Pattern::Clique(3)), Some(LayeredLevels::TRIANGLE));
        assert_eq!(LayeredLevels::level_of(Pattern::FourClique), Some(LayeredLevels::FOUR_CLIQUE));
        assert_eq!(LayeredLevels::level_of(Pattern::Clique(4)), Some(LayeredLevels::FOUR_CLIQUE));
        assert_eq!(LayeredLevels::level_of(Pattern::Clique(5)), None, "≥5-cliques don't nest");
        let mut levels = LayeredLevels::default();
        assert!(levels.is_empty());
        levels.set(LayeredLevels::TRIANGLE);
        assert!(levels.active(LayeredLevels::TRIANGLE) && !levels.active(LayeredLevels::WEDGE));
    }

    #[test]
    fn dyn_shim_matches_generic_kernel() {
        let g = graph(&[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)]);
        let e = Edge::new(1, 4);
        for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(4)] {
            let mut s = EnumScratch::default();
            let mut via_dyn: Vec<Vec<EdgeId>> = Vec::new();
            let mut sink = |partners: &[EdgeId]| via_dyn.push(partners.to_vec());
            let degs_dyn = p.for_each_completed_dyn(&g, e, &mut s, &mut sink);
            let mut via_gen: Vec<Vec<EdgeId>> = Vec::new();
            let degs_gen =
                p.for_each_completed(&g, e, &mut s, |partners| via_gen.push(partners.to_vec()));
            assert_eq!(degs_dyn, degs_gen, "{p:?}");
            assert_eq!(via_dyn, via_gen, "{p:?}: shim must not change results or order");
        }
    }

    #[test]
    fn count_runs_on_vertex_only_adjacency() {
        let edges = [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 5), (4, 5)];
        let g = graph(&edges);
        let mut lean = VertexAdjacency::new();
        for &(a, b) in &edges {
            lean.insert(Edge::new(a, b));
        }
        let mut s = EnumScratch::default();
        for e in [Edge::new(1, 4), Edge::new(3, 5), Edge::new(2, 5)] {
            for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(5)] {
                assert_eq!(
                    p.count_completed(&g, e, &mut s),
                    p.count_completed(&lean, e, &mut s),
                    "{p:?} at {e:?}: ID-free count diverges from tracked count"
                );
            }
        }
    }

    #[test]
    fn clique_generic_matches_fast_paths() {
        // Random-ish small dense graph.
        let edges: Vec<(Vertex, Vertex)> = (0..8)
            .flat_map(|a| ((a + 1)..8).map(move |b| (a, b)))
            .filter(|&(a, b)| (a * 31 + b * 17) % 3 != 0)
            .collect();
        let g = graph(&edges);
        for e in [Edge::new(0, 1), Edge::new(2, 5), Edge::new(3, 7)] {
            if g.contains(e) {
                continue;
            }
            assert_eq!(count(Pattern::Triangle, &g, e), count(Pattern::Clique(3), &g, e));
            assert_eq!(count(Pattern::FourClique, &g, e), count(Pattern::Clique(4), &g, e));
            // Enumerated partner sets must agree between the fast paths
            // and the generic kernel (as sets; order may differ).
            let t_fast: BTreeSet<_> = enumerate(Pattern::Triangle, &g, e).into_iter().collect();
            let t_gen: BTreeSet<_> = enumerate(Pattern::Clique(3), &g, e).into_iter().collect();
            assert_eq!(t_fast, t_gen);
            let f_fast: BTreeSet<_> = enumerate(Pattern::FourClique, &g, e).into_iter().collect();
            let f_gen: BTreeSet<_> = enumerate(Pattern::Clique(4), &g, e).into_iter().collect();
            assert_eq!(f_fast, f_gen);
        }
    }

    #[test]
    fn five_clique_in_k5() {
        // K5 minus one edge; adding it back completes exactly one 5-clique
        // (and C(3,1)=3 ... no: all 5 vertices are required).
        let mut g = Adjacency::new();
        for a in 0..5u64 {
            for b in (a + 1)..5 {
                g.insert(Edge::new(a, b));
            }
        }
        let e = Edge::new(0, 1);
        g.remove(e);
        assert_eq!(count(Pattern::Clique(5), &g, e), 1);
        let inst = enumerate(Pattern::Clique(5), &g, e);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].len(), Pattern::Clique(5).num_edges() - 1);
    }

    #[test]
    fn empty_graph_completes_nothing() {
        let g = Adjacency::new();
        let e = Edge::new(1, 2);
        for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(5)] {
            assert_eq!(count(p, &g, e), 0);
            assert!(enumerate(p, &g, e).is_empty());
        }
    }

    /// Brute force: count instances of the pattern containing edge e in
    /// g ∪ {e} by enumerating all vertex subsets.
    fn brute_force(p: Pattern, g: &Adjacency, e: Edge) -> u64 {
        let mut g2 = g.clone();
        g2.insert(e);
        let verts: Vec<Vertex> = g2.vertices().collect();
        let mut count = 0u64;
        match p {
            Pattern::Wedge => {
                // Ordered center with two distinct neighbours; instance
                // contains e.
                for &c in &verts {
                    let ns: Vec<Vertex> = g2.neighbors(c).collect();
                    for i in 0..ns.len() {
                        for j in (i + 1)..ns.len() {
                            let e1 = Edge::new(c, ns[i]);
                            let e2 = Edge::new(c, ns[j]);
                            if e1 == e || e2 == e {
                                count += 1;
                            }
                        }
                    }
                }
            }
            Pattern::Triangle | Pattern::Clique(3) => {
                count = subsets_containing(&g2, e, 3);
            }
            Pattern::FourClique | Pattern::Clique(4) => {
                count = subsets_containing(&g2, e, 4);
            }
            Pattern::Clique(k) => {
                count = subsets_containing(&g2, e, k as usize);
            }
        }
        count
    }

    /// Counts k-vertex cliques of g containing both endpoints of e.
    fn subsets_containing(g: &Adjacency, e: Edge, k: usize) -> u64 {
        let verts: Vec<Vertex> = g.vertices().collect();
        let n = verts.len();
        let mut count = 0u64;
        let mut idx: Vec<usize> = (0..k).collect();
        if n < k {
            return 0;
        }
        loop {
            let subset: Vec<Vertex> = idx.iter().map(|&i| verts[i]).collect();
            let has_u = subset.contains(&e.u());
            let has_v = subset.contains(&e.v());
            if has_u && has_v {
                let mut clique = true;
                'outer: for i in 0..k {
                    for j in (i + 1)..k {
                        if !g.adjacent(subset[i], subset[j]) {
                            clique = false;
                            break 'outer;
                        }
                    }
                }
                if clique {
                    count += 1;
                }
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return count;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    break;
                }
            }
            idx[i] += 1;
            for j in (i + 1)..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_layered_matches_per_pattern(
            edges in proptest::collection::vec((0u64..9, 0u64..9), 0..25),
            (a, b) in (0u64..9, 0u64..9),
        ) {
            prop_assume!(a != b);
            let e = Edge::new(a, b);
            let mut g = Adjacency::new();
            for (x, y) in edges {
                if let Some(ed) = Edge::try_new(x, y) {
                    if ed != e {
                        g.insert(ed);
                    }
                }
            }
            assert_layered_matches_per_pattern(&g, e);
        }

        #[test]
        fn prop_completion_matches_brute_force(
            edges in proptest::collection::vec((0u64..9, 0u64..9), 0..25),
            (a, b) in (0u64..9, 0u64..9),
        ) {
            prop_assume!(a != b);
            let e = Edge::new(a, b);
            let mut g = Adjacency::new();
            let mut lean = VertexAdjacency::new();
            for (x, y) in edges {
                if let Some(ed) = Edge::try_new(x, y) {
                    if ed != e {
                        g.insert(ed);
                        lean.insert(ed);
                    }
                }
            }
            for p in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(5)] {
                let fast = count(p, &g, e);
                let brute = brute_force(p, &g, e);
                prop_assert_eq!(fast, brute, "pattern {:?}", p);
                // The ID-free adjacency shares the counting kernel.
                let mut s = EnumScratch::default();
                prop_assert_eq!(p.count_completed(&lean, e, &mut s), brute, "lean {:?}", p);
                // Enumeration count agrees with the counting kernel and
                // yields distinct instances.
                let inst = enumerate(p, &g, e);
                prop_assert_eq!(inst.len() as u64, fast);
                let uniq: BTreeSet<_> = inst.iter().cloned().collect();
                prop_assert_eq!(uniq.len(), inst.len(), "duplicate instances");
                for i in &inst {
                    prop_assert_eq!(i.len(), p.num_edges() - 1);
                    prop_assert!(!i.contains(&e));
                }
            }
        }
    }
}
