//! Dynamic adjacency structure shared by the samplers and the exact
//! counter, built around a **dense edge-ID arena** and a **galloping
//! intersection kernel** over lazily maintained sorted shadows.
//!
//! The structure supports the three operations every algorithm in the
//! paper performs per event: edge insert, edge delete, and neighbourhood
//! queries (degree, membership, iteration, common-neighbour intersection).
//!
//! # Storage
//!
//! Neighbourhoods are stored as dense parallel arrays of
//! `(neighbour, edge id)` in **insertion order** (cache-local iteration —
//! the enumeration hot path walks these slices millions of times per
//! run) with a hash index attached once a vertex grows past
//! [`SPILL_THRESHOLD`] neighbours, keeping membership probes and
//! insert/remove maintenance O(1) for hubs while small neighbourhoods
//! (the overwhelming majority under reservoir budgets) stay a couple of
//! cache lines with branch-predictable linear scans.
//!
//! # The galloping shadow
//!
//! Past [`SHADOW_THRESHOLD`] neighbours a vertex additionally carries a
//! **sorted shadow**: a by-vertex ordered snapshot of its neighbourhood.
//! When *both* endpoints of an intersection carry shadows, the kernel
//! switches from iterate-and-probe (`O(min degree)` hash probes) to a
//! merge of the two snapshots with galloping (exponential + binary)
//! jumps, so hub–hub events skip runs of non-common neighbours in
//! logarithmic rather than linear time. Crucially the shadow is **lazy**:
//! mutations cost O(1) (an append to a pending list, a dead counter) and
//! the snapshot is re-sorted only every ~[`SHADOW_PENDING_MAX`]
//! mutations, so reservoir churn on hubs never pays per-event sorted
//! maintenance. Snapshot entries may therefore be stale; every candidate
//! hit is verified against the live arrays (falling back to the hash
//! index when `swap_remove` moved it) before emission.
//!
//! **Every tier emits in the iterated side's dense slot order** — the
//! order of its `items` array (insertion order as permuted by
//! `swap_remove`-backfilled deletions), which is what the pre-galloping
//! kernel emitted. The estimators' floating-point sums are evaluated in
//! enumeration order, and the golden-value tests pin them bit-for-bit —
//! so the galloping tier, whose merge naturally discovers hits in
//! *vertex* order, re-sorts verified hits by the iterated side's slot
//! before invoking the callback. Probing strategy is free to change;
//! emission order is part of the contract.
//!
//! No query allocates: callers either consume
//! [`AdjacencyBase::neighbor_slice`] directly or reuse a scratch buffer
//! via [`AdjacencyBase::common_neighbors_into`] /
//! [`Adjacency::common_edges_into`] (the galloping tier reuses a
//! thread-local hit buffer internally).
//!
//! # The edge-ID arena
//!
//! Every live edge owns a dense [`EdgeId`] minted by a slab allocator
//! (freed IDs are recycled LIFO), so the ID space never exceeds the peak
//! number of *concurrently* live edges — under reservoir budgets, the
//! reservoir capacity. Both directions of an edge store the same ID, and
//! the intersection kernels surface partner **edge IDs** directly
//! ([`Adjacency::for_each_common_edge`]), which is what lets the
//! estimators upstream replace per-partner `Edge`-keyed hash lookups
//! with plain dense-array reads.
//!
//! # ID-free counters
//!
//! The structure is generic over an [`IdPayload`]: [`Adjacency`]
//! (`P = EdgeId`) carries the arena, while [`VertexAdjacency`]
//! (`P = ()`) compiles all per-edge ID bookkeeping away — no arena, no
//! per-neighbour ID array, no recycling — for the uniform baselines
//! (Triest, ThinkD) whose count-only paths never consume IDs.

use crate::edge::{Edge, Vertex};
use crate::fxhash::FxHashMap;
use std::cell::{Cell, RefCell};

/// Dense identifier of a live edge, minted by the [`Adjacency`] arena.
///
/// IDs are recycled when edges are removed, so they stay small (bounded
/// by the peak live-edge count) and can index plain `Vec`s. An ID is
/// only meaningful while its edge is live; holding one across a
/// [`Adjacency::remove`] of that edge is a logic error.
pub type EdgeId = u32;

/// Per-neighbour payload stored alongside each adjacency entry: either a
/// dense arena [`EdgeId`] ([`Adjacency`]) or nothing at all
/// ([`VertexAdjacency`]). Sealed — exactly those two instantiations
/// exist, and all `TRACKED` branches are resolved at compile time.
pub trait IdPayload:
    Copy + PartialEq + std::fmt::Debug + Default + private::Sealed + 'static
{
    /// Whether this payload carries arena edge IDs (drives the arena
    /// bookkeeping; const-folded per instantiation).
    const TRACKED: bool;
    /// Wraps a freshly minted arena ID.
    fn from_id(id: EdgeId) -> Self;
    /// Unwraps the arena ID (meaningless for untracked payloads; only
    /// reachable behind `TRACKED` branches).
    fn id(self) -> EdgeId;
}

mod private {
    /// Seals [`super::IdPayload`] to `EdgeId` and `()`.
    pub trait Sealed {}
    impl Sealed for super::EdgeId {}
    impl Sealed for () {}
}

impl IdPayload for EdgeId {
    const TRACKED: bool = true;

    #[inline]
    fn from_id(id: EdgeId) -> Self {
        id
    }

    #[inline]
    fn id(self) -> EdgeId {
        self
    }
}

impl IdPayload for () {
    const TRACKED: bool = false;

    #[inline]
    fn from_id(_: EdgeId) -> Self {}

    #[inline]
    fn id(self) -> EdgeId {
        0
    }
}

/// A common neighbour `w` of a vertex pair `(u, v)` together with the
/// IDs of the two edges connecting it: `eu` is the ID of `(u, w)` and
/// `ev` the ID of `(v, w)` (with respect to the argument order of the
/// query that produced it).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CommonEdge {
    /// The common neighbour.
    pub w: Vertex,
    /// ID of the edge between the first query vertex and `w`.
    pub eu: EdgeId,
    /// ID of the edge between the second query vertex and `w`.
    pub ev: EdgeId,
}

/// The serializable layout of an [`AdjacencyBase`]: every neighbourhood's
/// dense slot order verbatim, plus the edge-ID arena's free list.
///
/// Slot order is *observable* state — enumeration emits in dense slot
/// order and the estimators' floating-point sums are evaluated in
/// emission order — so a snapshot that re-sorted neighbourhoods would
/// restore a graph whose future estimates diverge bit-wise from the
/// original. [`AdjacencyBase::layout_snapshot`] therefore copies each
/// `items` array slot-for-slot, and [`AdjacencyBase::from_layout`]
/// replays it verbatim.
///
/// The vertex list itself is sorted by vertex id: the hash map that
/// holds the neighbourhoods has no observable order on the event path
/// (per-vertex lookups only), so the snapshot canonicalises it — two
/// graphs in the same live state produce byte-identical layouts
/// regardless of their map histories.
///
/// Purely derived acceleration state (hash indexes, sorted shadows) is
/// not captured; restore re-attaches it from the current degree. That
/// changes probing strategy only, never emission order.
#[derive(Clone, Debug, PartialEq)]
pub struct AdjacencyLayout {
    /// Per vertex (ascending by id): its neighbours and connecting edge
    /// IDs in dense slot order. IDs are all zero for untracked payloads.
    pub vertices: Vec<(Vertex, Vec<(Vertex, EdgeId)>)>,
    /// The arena free list, LIFO order verbatim — it decides which IDs
    /// future inserts mint. Empty for untracked payloads.
    pub free: Vec<EdgeId>,
    /// Exclusive upper bound of the ID space (`endpoints.len()`); the
    /// live IDs and `free` partition `0..id_bound` exactly. Zero for
    /// untracked payloads.
    pub id_bound: u32,
}

/// Neighbourhood size beyond which a hash index is attached for O(1)
/// membership probes. Below it, linear scans over the dense array win on
/// real hardware (no hashing, no pointer chase).
pub const SPILL_THRESHOLD: usize = 16;

/// Neighbourhood size beyond which a sorted shadow snapshot is
/// additionally attached, making the vertex eligible for the galloping
/// intersection tier. Higher than [`SPILL_THRESHOLD`] because the merge
/// only beats iterate-and-probe once both sides are genuinely large.
/// Once attached, index and shadow are kept for the rest of the set's
/// life — churn around the thresholds must not thrash.
pub const SHADOW_THRESHOLD: usize = 32;

/// Pending-insert count that triggers a shadow snapshot rebuild (the
/// dead counter triggers one at half the snapshot length). Bounds both
/// the amortised rebuild cost (`O(d log d)` every ~16 mutations) and the
/// extra per-intersection work of probing the pending list. (PR 4
/// re-measured 48 here under reservoir churn: no gain — pending probes
/// eat what the rarer rebuilds save — so 16 stands.)
pub const SHADOW_PENDING_MAX: usize = 16;

/// The galloping snapshot of one (large) neighbourhood: a by-vertex
/// sorted array of `(vertex, slot)` entries, maintained lazily.
///
/// Between rebuilds the snapshot tolerates three kinds of staleness,
/// all repaired at use rather than at mutation:
/// * a `sorted` entry's vertex may be dead (removed since the rebuild) —
///   detected when verification finds it in neither its recorded slot
///   nor the hash index;
/// * a `sorted` entry's slot may be stale (`swap_remove` moved it) —
///   repaired by one hash-index lookup;
/// * recent inserts are missing from `sorted` — carried in `pending`
///   and intersected by direct hash probes of the other side.
#[derive(Clone, Default, Debug)]
struct Shadow {
    /// `(vertex, slot)` sorted by vertex as of the last rebuild.
    sorted: Vec<(Vertex, u32)>,
    /// Vertices inserted since the last rebuild (unsorted, may have died
    /// again; verified at use like everything else).
    pending: Vec<Vertex>,
    /// Removals observed since the last rebuild.
    dead: u32,
    /// Set when the O(1) logs stopped covering the mutations (memory
    /// guard, or a freshly attached shadow that has never been built):
    /// the snapshot is unusable until the next refresh.
    exhausted: bool,
}

impl Shadow {
    /// A shadow that has never been built — refreshed on first use, so
    /// sets that never reach the galloping tier never pay the sort.
    fn unbuilt() -> Self {
        Self { exhausted: true, ..Self::default() }
    }

    /// O(1) insert log. Caps the pending list at the live degree so a
    /// heavily churned set that is never galloped cannot grow the
    /// shadow unboundedly — past the cap the snapshot is written off
    /// until the next refresh.
    #[inline]
    fn log_insert(&mut self, v: Vertex, live: usize) {
        if self.exhausted {
            return;
        }
        if self.pending.len() >= live.max(SHADOW_PENDING_MAX) {
            self.exhausted = true;
            self.pending.clear();
        } else {
            self.pending.push(v);
        }
    }

    /// O(1) removal log.
    #[inline]
    fn log_remove(&mut self) {
        self.dead = self.dead.saturating_add(1);
    }

    fn rebuild(&mut self, items: &[Vertex]) {
        self.sorted.clear();
        self.sorted.extend(items.iter().enumerate().map(|(i, &w)| (w, i as u32)));
        self.sorted.sort_unstable();
        self.pending.clear();
        self.dead = 0;
        self.exhausted = false;
    }

    /// Whether the snapshot must be rebuilt before the galloping tier
    /// can trust it (checked — and repaired — at use, never at
    /// mutation).
    #[inline]
    fn needs_refresh(&self) -> bool {
        self.exhausted
            || self.pending.len() > SHADOW_PENDING_MAX
            || (self.dead as usize) * 2 > self.sorted.len()
    }
}

/// One vertex's neighbourhood: dense parallel `(vertex, payload)` arrays
/// in insertion order, plus a hash position index past
/// [`SPILL_THRESHOLD`] and a lazy sorted shadow past
/// [`SHADOW_THRESHOLD`].
#[derive(Clone, Default, Debug)]
struct NeighborSet<P: IdPayload> {
    items: Vec<Vertex>,
    /// `ids[i]` is the payload of the edge `(owner, items[i])`. For
    /// `P = ()` this is a `Vec<()>` — a length with no storage.
    ids: Vec<P>,
    /// vertex → slot in `items`; `Some` once spilled (kept for the rest
    /// of the set's life — churn around the threshold must not thrash).
    /// Boxed for the same reason as the shadow: the unspilled majority
    /// pays a niche-packed pointer, not 40 inline bytes, keeping the
    /// per-set footprint — and so the vertex table every `adj.get`
    /// walks — small.
    index: Option<Box<FxHashMap<Vertex, u32>>>,
    /// Galloping snapshot; `Some` once past [`SHADOW_THRESHOLD`].
    /// `RefCell` because the snapshot is refreshed *at use* (inside the
    /// `&self` intersection) rather than at mutation — mutation paths
    /// reach it allocation- and borrow-free through `get_mut`. Makes the
    /// adjacency `!Sync`; the engine clones counters per thread by
    /// design. Boxed so the rarely-populated field costs the dominant
    /// small sets one niche-packed pointer, not an inline `Shadow` —
    /// `NeighborSet` lives inline in the vertex hash table, and its
    /// size is what every `adj.get` pays for.
    /// Invariant: `shadow.is_some()` implies `index.is_some()`.
    shadow: Option<Box<RefCell<Shadow>>>,
}

impl<P: IdPayload> NeighborSet<P> {
    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Slot of `v`, if present.
    ///
    /// Unspilled sets screen with `contains` before locating the slot:
    /// the membership scan vectorises (no index to carry), and probe
    /// workloads — the common-neighbour intersections — are miss-heavy,
    /// so the extra position pass runs only on the rare hit.
    #[inline]
    fn find(&self, v: Vertex) -> Option<usize> {
        match &self.index {
            Some(idx) => idx.get(&v).map(|&i| i as usize),
            None => {
                if self.items.contains(&v) {
                    self.items.iter().position(|&w| w == v)
                } else {
                    None
                }
            }
        }
    }

    /// The payload of the edge to `v`, if present. For untracked
    /// payloads this is a pure membership probe — the slot resolution is
    /// compiled away.
    #[inline]
    fn find_payload(&self, v: Vertex) -> Option<P> {
        if P::TRACKED {
            self.find(v).map(|i| self.ids[i])
        } else if self.contains(v) {
            Some(P::default())
        } else {
            None
        }
    }

    #[inline]
    fn contains(&self, v: Vertex) -> bool {
        match &self.index {
            Some(idx) => idx.contains_key(&v),
            None => self.items.contains(&v),
        }
    }

    /// Appends `(v, id)`; the caller guarantees `v` is absent.
    fn push_unchecked(&mut self, v: Vertex, id: P) {
        debug_assert!(!self.contains(v), "push_unchecked of a present neighbour");
        if let Some(idx) = &mut self.index {
            idx.insert(v, self.items.len() as u32);
        }
        self.items.push(v);
        self.ids.push(id);
        self.note_insert(v);
    }

    /// Inserts `(v, id)` unless `v` is already present; the duplicate
    /// check and the insertion share one probe. Returns `true` on insert.
    fn insert_checked(&mut self, v: Vertex, id: P) -> bool {
        match &mut self.index {
            Some(idx) => {
                if idx.contains_key(&v) {
                    return false;
                }
                idx.insert(v, self.items.len() as u32);
                self.items.push(v);
                self.ids.push(id);
                self.note_insert(v);
                true
            }
            None => {
                if self.items.contains(&v) {
                    return false;
                }
                self.push_unchecked(v, id);
                true
            }
        }
    }

    /// Post-insert bookkeeping: attach the index / shadow on threshold
    /// crossings, and log the insert into an existing shadow (O(1); the
    /// snapshot itself is only rebuilt every ~[`SHADOW_PENDING_MAX`]
    /// mutations).
    #[inline]
    fn note_insert(&mut self, v: Vertex) {
        if self.index.is_none() && self.items.len() > SPILL_THRESHOLD {
            self.index = Some(Box::new(
                self.items.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect(),
            ));
        }
        match &mut self.shadow {
            Some(sh) => sh.get_mut().log_insert(v, self.items.len()),
            None => {
                if self.items.len() > SHADOW_THRESHOLD {
                    // Attached unbuilt: the first galloped intersection
                    // pays the sort, never the mutation path.
                    self.shadow = Some(Box::new(RefCell::new(Shadow::unbuilt())));
                }
            }
        }
    }

    /// Removes `v`, returning the stored payload if it was present.
    fn remove(&mut self, v: Vertex) -> Option<P> {
        let pos = match &mut self.index {
            Some(idx) => idx.remove(&v)? as usize,
            None => self.items.iter().position(|&w| w == v)?,
        };
        self.items.swap_remove(pos);
        let id = self.ids.swap_remove(pos);
        if pos < self.items.len() {
            if let Some(idx) = &mut self.index {
                idx.insert(self.items[pos], pos as u32);
            }
        }
        if let Some(sh) = &mut self.shadow {
            sh.get_mut().log_remove();
        }
        Some(id)
    }

    /// Removes the entry at `pos` (the caller already resolved the
    /// slot, e.g. through the arena's mirror table), returning the
    /// `(vertex, payload)` that `swap_remove` backfilled into `pos`, if
    /// any — the caller re-points that edge's mirror entry. Performs
    /// exactly the dense-array / index / shadow mutations of
    /// [`NeighborSet::remove`], so slot layouts (and everything
    /// downstream that observes them) are independent of which removal
    /// path ran.
    fn swap_remove_at(&mut self, pos: usize) -> Option<(Vertex, P)> {
        if let Some(idx) = &mut self.index {
            idx.remove(&self.items[pos]);
        }
        self.items.swap_remove(pos);
        self.ids.swap_remove(pos);
        let moved = if pos < self.items.len() {
            let w = self.items[pos];
            if let Some(idx) = &mut self.index {
                idx.insert(w, pos as u32);
            }
            Some((w, self.ids[pos]))
        } else {
            None
        };
        if let Some(sh) = &mut self.shadow {
            sh.get_mut().log_remove();
        }
        moved
    }

    /// The live slot of snapshot entry `(w, slot)`, verifying against
    /// the dense array and falling back to the index when `swap_remove`
    /// moved the entry; `None` if `w` is no longer a neighbour.
    #[inline]
    fn verify_slot(&self, w: Vertex, slot: u32) -> Option<u32> {
        if self.items.get(slot as usize) == Some(&w) {
            return Some(slot);
        }
        let idx = self.index.as_ref().expect("shadowed set always carries an index");
        idx.get(&w).copied()
    }

    #[inline]
    fn as_slice(&self) -> &[Vertex] {
        &self.items
    }
}

/// Galloping advance: the first index `>= lo` whose vertex is `>= target`,
/// assuming everything before `lo` is `< target`. Exponential probing
/// brackets the answer in `O(log jump)` steps, then a binary search pins
/// it inside the bracketed window — so skipping a run of `k` non-common
/// neighbours costs `O(log k)` instead of `k`.
#[inline]
fn gallop_to(s: &[(Vertex, u32)], mut lo: usize, target: Vertex) -> usize {
    let mut step = 1usize;
    while lo + step <= s.len() && s[lo + step - 1].0 < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step - 1).min(s.len());
    lo + s[lo..hi].partition_point(|e| e.0 < target)
}

/// Intersects two by-vertex sorted snapshots with alternating galloping,
/// invoking `hit(v, slot_a, slot_b)` per common vertex, in vertex order.
/// Entries are snapshot state — the caller verifies them against the
/// live sets.
fn gallop_intersect(
    a: &[(Vertex, u32)],
    b: &[(Vertex, u32)],
    mut hit: impl FnMut(Vertex, u32, u32),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (av, bv) = (a[i].0, b[j].0);
        match av.cmp(&bv) {
            std::cmp::Ordering::Equal => {
                hit(av, a[i].1, b[j].1);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i = gallop_to(a, i + 1, bv),
            std::cmp::Ordering::Greater => j = gallop_to(b, j + 1, av),
        }
    }
}

thread_local! {
    /// Hit buffer of the galloping tier: verified `(iterated-side slot,
    /// other-side slot)` pairs, re-sorted to the iterated side's dense
    /// slot order before emission. Thread-local so the intersection stays `&self` and
    /// allocation-free in steady state; `Cell` + take/put keeps
    /// re-entrant calls safe (they just start from a fresh buffer).
    static GALLOP_HITS: Cell<Vec<(u32, u32)>> = const { Cell::new(Vec::new()) };
}

/// A dynamic, undirected, simple-graph adjacency structure, generic over
/// the per-edge [`IdPayload`]. Use the [`Adjacency`] (arena-tracked) or
/// [`VertexAdjacency`] (ID-free) aliases.
///
/// Vertices with no incident edges are pruned eagerly so the memory
/// footprint tracks the number of live edges — important for reservoirs
/// whose content churns over millions of events.
#[derive(Clone, Default, Debug)]
pub struct AdjacencyBase<P: IdPayload> {
    adj: FxHashMap<Vertex, NeighborSet<P>>,
    num_edges: usize,
    /// Arena: endpoints per edge ID. Entries of freed IDs are stale until
    /// the ID is recycled. Untouched (empty) when `P` is untracked.
    endpoints: Vec<Edge>,
    /// Arena mirror table: `mirror[id] = [slot of v in u's set, slot of
    /// u in v's set]` for the live edge `(u, v) = endpoints[id]` (`u <
    /// v` canonical). Maintained through every insert and `swap_remove`
    /// backfill, it makes removals *find-free*: a removal by ID reads
    /// both slots directly, a removal by edge resolves one endpoint's
    /// slot and mirrors the other. Parallel to `endpoints`; untouched
    /// when `P` is untracked.
    mirror: Vec<[u32; 2]>,
    /// Freed IDs awaiting recycling (LIFO, so the ID space stays dense).
    free: Vec<EdgeId>,
}

/// The arena-tracked adjacency: every live edge owns a dense recycled
/// [`EdgeId`], and the intersection kernels surface partner IDs.
pub type Adjacency = AdjacencyBase<EdgeId>;

/// The ID-free adjacency for count-only algorithms: same neighbour
/// storage, hash index and galloping kernel, but no arena and no
/// per-entry ID array — insert/remove touch exactly one `Vec<Vertex>`
/// per direction.
pub type VertexAdjacency = AdjacencyBase<()>;

impl<P: IdPayload> AdjacencyBase<P> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for roughly `vertices` vertices.
    pub fn with_capacity(vertices: usize) -> Self {
        Self {
            adj: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            num_edges: 0,
            endpoints: Vec::new(),
            mirror: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices with at least one incident edge.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Inserts an edge. Returns `true` if the edge was not already
    /// present. For [`VertexAdjacency`] this is the whole story; for
    /// [`Adjacency`] it also mints an arena ID (see
    /// [`Adjacency::insert_full`]).
    #[inline]
    pub fn insert(&mut self, e: Edge) -> bool {
        self.insert_impl(e).is_some()
    }

    fn insert_impl(&mut self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        // Peek the ID the arena will assign, so the duplicate check and
        // the forward insertion share a single probe of u's set.
        let id: EdgeId = if P::TRACKED {
            match self.free.last() {
                Some(&id) => id,
                None => EdgeId::try_from(self.endpoints.len()).expect("edge-ID arena overflow"),
            }
        } else {
            0
        };
        let u_set = self.adj.entry(u).or_default();
        if !u_set.insert_checked(v, P::from_id(id)) {
            return None;
        }
        let u_slot = u_set.len() - 1;
        let v_set = self.adj.entry(v).or_default();
        let v_slot = v_set.len();
        v_set.push_unchecked(u, P::from_id(id));
        if P::TRACKED {
            // Commit the mint.
            match self.free.pop() {
                Some(_) => {
                    self.endpoints[id as usize] = e;
                    self.mirror[id as usize] = [u_slot as u32, v_slot as u32];
                }
                None => {
                    self.endpoints.push(e);
                    self.mirror.push([u_slot as u32, v_slot as u32]);
                }
            }
        }
        self.num_edges += 1;
        Some(id)
    }

    /// Removes an edge. Returns `true` if the edge was present.
    #[inline]
    pub fn remove(&mut self, e: Edge) -> bool {
        self.remove_impl(e).is_some()
    }

    fn remove_impl(&mut self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        if P::TRACKED {
            // One find on u's side resolves the slot and the ID; the
            // mirror table hands over v's slot for free.
            let u_set = self.adj.get_mut(&u)?;
            let u_slot = u_set.find(v)?;
            let id = u_set.ids[u_slot].id();
            let v_slot = self.mirror[id as usize][1] as usize;
            self.detach(u, u_slot);
            self.detach(v, v_slot);
            self.free.push(id);
            self.num_edges -= 1;
            return Some(id);
        }
        let id = match self.adj.get_mut(&u) {
            Some(set) => set.remove(v)?,
            None => return None,
        };
        if self.adj.get(&u).is_some_and(NeighborSet::is_empty) {
            self.adj.remove(&u);
        }
        let set = self.adj.get_mut(&v).expect("adjacency symmetry violated: missing reverse entry");
        let id2 = set.remove(u).expect("adjacency symmetry violated: missing reverse neighbour");
        debug_assert_eq!(id, id2, "edge ID asymmetry for {e:?}");
        if set.is_empty() {
            self.adj.remove(&v);
        }
        self.num_edges -= 1;
        Some(id.id())
    }

    /// Drops slot `pos` of `x`'s neighbour set, re-pointing the mirror
    /// entry of whichever edge `swap_remove` backfilled into the slot
    /// and pruning the vertex when its set empties. Tracked arenas only
    /// (the mirror table is what makes the slot known without a find).
    fn detach(&mut self, x: Vertex, pos: usize) {
        debug_assert!(P::TRACKED, "detach requires the arena mirror table");
        let set = self.adj.get_mut(&x).expect("adjacency symmetry violated: missing entry");
        if let Some((_, moved)) = set.swap_remove_at(pos) {
            let m = moved.id() as usize;
            // The backfilled slot belongs to edge m's x-side: re-point
            // whichever half of its mirror entry names x.
            let side = usize::from(self.endpoints[m].u() != x);
            self.mirror[m][side] = pos as u32;
        } else if set.is_empty() {
            self.adj.remove(&x);
        }
    }

    /// True if the edge is present.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// True if `u` and `v` are adjacent (order-insensitive; false for `u == v`).
    #[inline]
    pub fn adjacent(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// Degree of `x` (0 if unknown).
    #[inline]
    pub fn degree(&self, x: Vertex) -> usize {
        self.adj.get(&x).map_or(0, NeighborSet::len)
    }

    /// The neighbours of `x` as a dense slice (empty if unknown).
    ///
    /// This is the allocation-free view the enumeration hot paths walk;
    /// order is unspecified but deterministic for a given event history.
    #[inline]
    pub fn neighbor_slice(&self, x: Vertex) -> &[Vertex] {
        self.adj.get(&x).map_or(&[], NeighborSet::as_slice)
    }

    /// Iterates the neighbours of `x`.
    pub fn neighbors(&self, x: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.neighbor_slice(x).iter().copied()
    }

    /// Iterates the vertices with at least one incident edge.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates all live edges (each once, in canonical form).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().flat_map(|(&u, set)| {
            set.as_slice().iter().copied().filter(move |&v| u < v).map(move |v| Edge::new(u, v))
        })
    }

    /// The shared intersection kernel: calls `f(w, pu, pv)` for each
    /// common neighbour `w` of `u` and `v` with the payloads of `(u, w)`
    /// and `(v, w)`, returning `(deg u, deg v)`.
    ///
    /// Tiers, chosen per event:
    ///
    /// * both sides shadowed — galloping merge over the two sorted
    ///   snapshots plus hash probes for their pending inserts; verified
    ///   hits are re-sorted to the iterated side's dense slot order and
    ///   deduplicated before emission;
    /// * otherwise — walk the smaller side's dense array in slot order
    ///   and probe the larger (hash index if spilled, linear scan below
    ///   the threshold).
    ///
    /// Every tier emits in the smaller side's dense slot order (its
    /// insertion order as permuted by `swap_remove` deletions), so
    /// downstream floating-point accumulation order — which the golden
    /// tests pin bit-for-bit — is independent of the probing strategy.
    #[inline]
    fn for_each_common_entry(
        &self,
        u: Vertex,
        v: Vertex,
        mut f: impl FnMut(Vertex, P, P),
    ) -> (usize, usize) {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return (self.degree(u), self.degree(v));
        };
        let u_is_small = nu.len() <= nv.len();
        let (small, large) = if u_is_small { (nu, nv) } else { (nv, nu) };
        if let (Some(ss), Some(ls)) = (&small.shadow, &large.shadow) {
            // Refresh-at-use: rebuild a stale snapshot now, while no
            // shared borrow is outstanding.
            {
                let mut sh = ss.borrow_mut();
                if sh.needs_refresh() {
                    sh.rebuild(&small.items);
                }
            }
            {
                let mut sh = ls.borrow_mut();
                if sh.needs_refresh() {
                    sh.rebuild(&large.items);
                }
            }
            gallop_common(small, ss, large, ls, |w, a, b| {
                let (a, b) = (a as usize, b as usize);
                if u_is_small {
                    f(w, small.ids[a], large.ids[b]);
                } else {
                    f(w, large.ids[b], small.ids[a]);
                }
            });
        } else {
            for (i, &w) in small.items.iter().enumerate() {
                if let Some(p) = large.find_payload(w) {
                    if u_is_small {
                        f(w, small.ids[i], p);
                    } else {
                        f(w, p, small.ids[i]);
                    }
                }
            }
        }
        (nu.len(), nv.len())
    }

    /// Calls `f` for each common neighbour of `u` and `v`.
    ///
    /// Runs on the shared galloping kernel; for untracked payloads the
    /// probes are pure membership tests (no slot resolution). See
    /// [`Adjacency::for_each_common_edge`] for the ID-carrying variant.
    #[inline]
    pub fn for_each_common_neighbor(&self, u: Vertex, v: Vertex, mut f: impl FnMut(Vertex)) {
        self.for_each_common_entry(u, v, |w, _, _| f(w));
    }

    /// A reusable handle on `x`'s neighbourhood for repeated probes
    /// against the *same* vertex — e.g. the 4-clique kernels, which test
    /// one common neighbour against every later one. Resolving the
    /// vertex's set once turns O(k) hash probes into one probe plus
    /// O(k) dense membership scans.
    #[inline]
    pub fn neighborhood(&self, x: Vertex) -> Neighborhood<'_, P> {
        Neighborhood(self.adj.get(&x))
    }

    /// Collects the common neighbours of `u` and `v` into `out` (cleared
    /// first). Using a caller-provided buffer avoids per-event allocation
    /// in the hot enumeration loops.
    pub fn common_neighbors_into(&self, u: Vertex, v: Vertex, out: &mut Vec<Vertex>) {
        out.clear();
        self.for_each_common_neighbor(u, v, |w| out.push(w));
    }

    /// Number of common neighbours of `u` and `v`.
    pub fn common_neighbor_count(&self, u: Vertex, v: Vertex) -> usize {
        let mut n = 0;
        self.for_each_common_neighbor(u, v, |_| n += 1);
        n
    }

    /// Removes all edges and vertices (and resets the ID arena).
    pub fn clear(&mut self) {
        self.adj.clear();
        self.num_edges = 0;
        self.endpoints.clear();
        self.mirror.clear();
        self.free.clear();
    }

    /// Debug-only structural invariant check: symmetry, no self-loops,
    /// the edge counter matching the stored sets, index coherence of
    /// spilled neighbourhoods, shadow coverage (every live neighbour of
    /// a shadowed set is reachable through its snapshot or pending
    /// list), and — for tracked payloads — arena coherence (ID symmetry,
    /// endpoint agreement, and exact live/free partition of the ID
    /// space).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut half_edges = 0usize;
        let mut live_ids = std::collections::BTreeSet::new();
        for (&u, set) in &self.adj {
            assert!(!set.is_empty(), "vertex {u} retained with empty set");
            assert_eq!(set.items.len(), set.ids.len(), "parallel array drift at {u}");
            if let Some(idx) = &set.index {
                assert_eq!(idx.len(), set.items.len(), "index size drift at {u}");
                for (i, &w) in set.items.iter().enumerate() {
                    assert_eq!(
                        idx.get(&w).copied(),
                        Some(i as u32),
                        "index out of sync at {u} slot {i}"
                    );
                }
            }
            if let Some(sh) = &set.shadow {
                let sh = sh.borrow();
                assert!(set.index.is_some(), "shadowed set without index at {u}");
                assert!(
                    sh.sorted.windows(2).all(|w| w[0].0 < w[1].0),
                    "shadow snapshot unsorted at {u}"
                );
                if sh.exhausted {
                    assert!(sh.pending.is_empty(), "exhausted shadow retains pending at {u}");
                } else {
                    // Every live neighbour must be covered by the
                    // snapshot or the pending list (staleness the other
                    // way — dead snapshot entries — is legal and
                    // verified at use).
                    for &w in &set.items {
                        let in_sorted = sh.sorted.binary_search_by_key(&w, |e| e.0).is_ok();
                        assert!(
                            in_sorted || sh.pending.contains(&w),
                            "live neighbour {w} of {u} invisible to the shadow"
                        );
                    }
                }
            }
            for (i, &v) in set.items.iter().enumerate() {
                assert_ne!(u, v, "self-loop stored at {u}");
                let rev = self.adj.get(&v).expect("asymmetric edge");
                let j = rev.find(u).unwrap_or_else(|| panic!("asymmetric edge {u}-{v}"));
                if P::TRACKED {
                    let id = set.ids[i].id();
                    assert_eq!(rev.ids[j].id(), id, "edge ID asymmetry on {u}-{v}");
                    assert_eq!(
                        self.endpoints[id as usize],
                        Edge::new(u, v),
                        "arena endpoints out of sync for id {id}"
                    );
                    let side = usize::from(u > v);
                    assert_eq!(
                        self.mirror[id as usize][side] as usize, i,
                        "mirror slot out of sync for id {id} at {u}"
                    );
                    if u < v {
                        assert!(live_ids.insert(id), "edge ID {id} stored for two edges");
                    }
                }
            }
            half_edges += set.len();
        }
        assert_eq!(half_edges % 2, 0);
        assert_eq!(self.num_edges, half_edges / 2, "edge counter drift");
        if P::TRACKED {
            let free: std::collections::BTreeSet<_> = self.free.iter().copied().collect();
            assert_eq!(free.len(), self.free.len(), "duplicate IDs on the free list");
            assert!(free.iter().all(|id| (*id as usize) < self.endpoints.len()));
            assert!(live_ids.is_disjoint(&free), "freed ID still live");
            assert_eq!(
                live_ids.len() + free.len(),
                self.endpoints.len(),
                "ID space is not exactly partitioned into live and free"
            );
        } else {
            assert!(self.endpoints.is_empty() && self.free.is_empty(), "untracked arena touched");
        }
    }

    /// Captures the observable layout of the graph — every
    /// neighbourhood's dense slot order verbatim, plus the arena free
    /// list — in the canonical (vertex-sorted) form described on
    /// [`AdjacencyLayout`].
    pub fn layout_snapshot(&self) -> AdjacencyLayout {
        let mut vertices: Vec<(Vertex, Vec<(Vertex, EdgeId)>)> = self
            .adj
            .iter()
            .map(|(&u, set)| {
                let slots = set.items.iter().zip(&set.ids).map(|(&w, &p)| (w, p.id())).collect();
                (u, slots)
            })
            .collect();
        vertices.sort_unstable_by_key(|&(u, _)| u);
        AdjacencyLayout {
            vertices,
            free: self.free.clone(),
            id_bound: u32::try_from(self.endpoints.len()).expect("edge-ID arena overflow"),
        }
    }

    /// Rebuilds a graph from a [`layout_snapshot`]: every neighbourhood
    /// re-materialises in the recorded slot order, the arena re-derives
    /// its endpoint and mirror tables from the per-slot IDs, and the
    /// free list is replayed verbatim so future ID mints match the
    /// original graph's. Acceleration state (hash indexes, sorted
    /// shadows) is re-attached from the current degree.
    ///
    /// [`layout_snapshot`]: AdjacencyBase::layout_snapshot
    ///
    /// # Panics
    ///
    /// Panics if the layout is internally inconsistent (asymmetric
    /// slots, IDs at or beyond `id_bound`).
    pub fn from_layout(layout: &AdjacencyLayout) -> Self {
        let mut adj =
            FxHashMap::with_capacity_and_hasher(layout.vertices.len(), Default::default());
        let mut half_edges = 0usize;
        let bound = layout.id_bound as usize;
        // Arena tables sized to the exact recorded bound; slots of freed
        // IDs stay at these placeholders — they are never read before
        // the ID is recycled (and rewritten) by a future insert.
        let mut endpoints = vec![Edge::new(0, 1); if P::TRACKED { bound } else { 0 }];
        let mut mirror = vec![[0u32; 2]; if P::TRACKED { bound } else { 0 }];
        for (u, slots) in &layout.vertices {
            let mut set = NeighborSet::<P>::default();
            set.items.reserve_exact(slots.len());
            set.ids.reserve_exact(slots.len());
            for (slot, &(w, id)) in slots.iter().enumerate() {
                assert_ne!(*u, w, "self-loop in adjacency layout");
                set.items.push(w);
                set.ids.push(P::from_id(id));
                if P::TRACKED {
                    assert!((id as usize) < bound, "layout edge ID {id} beyond id_bound");
                    endpoints[id as usize] = Edge::new(*u, w);
                    mirror[id as usize][usize::from(*u > w)] = slot as u32;
                }
            }
            if set.items.len() > SPILL_THRESHOLD {
                set.index = Some(Box::new(
                    set.items.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect(),
                ));
            }
            if set.items.len() > SHADOW_THRESHOLD {
                set.shadow = Some(Box::new(RefCell::new(Shadow::unbuilt())));
            }
            half_edges += set.items.len();
            adj.insert(*u, set);
        }
        assert_eq!(half_edges % 2, 0, "asymmetric adjacency layout");
        let restored = Self {
            adj,
            num_edges: half_edges / 2,
            endpoints,
            mirror,
            free: if P::TRACKED { layout.free.clone() } else { Vec::new() },
        };
        if cfg!(debug_assertions) {
            restored.check_invariants();
        }
        restored
    }
}

/// The galloping tier: merges the two snapshots, covers their pending
/// inserts by direct hash probes, verifies every candidate against the
/// live sets, and emits `hit(w, slot_small, slot_large)` in the small
/// side's dense slot order (deduplicated — a vertex can surface both
/// from the merge and from a pending list).
fn gallop_common<P: IdPayload>(
    small: &NeighborSet<P>,
    ss: &RefCell<Shadow>,
    large: &NeighborSet<P>,
    ls: &RefCell<Shadow>,
    mut hit: impl FnMut(Vertex, u32, u32),
) {
    GALLOP_HITS.with(|cell| {
        let mut hits = cell.take();
        hits.clear();
        {
            // Shadow borrows live only for the merge/probe phase — the
            // emission loop below reads the dense arrays alone, so a
            // callback may freely re-enter common-neighbour queries on
            // the same vertices (refreshing these shadows included).
            let (ss, ls) = (ss.borrow(), ls.borrow());
            gallop_intersect(&ss.sorted, &ls.sorted, |w, sa, sb| {
                if let (Some(a), Some(b)) = (small.verify_slot(w, sa), large.verify_slot(w, sb)) {
                    hits.push((a, b));
                }
            });
            // Recent inserts on either side are missing from its
            // snapshot: probe them through the live indexes (both
            // directions, deduplicated below).
            for &w in &ss.pending {
                if let (Some(a), Some(b)) = (small.find(w), large.find(w)) {
                    hits.push((a as u32, b as u32));
                }
            }
            for &w in &ls.pending {
                if let (Some(b), Some(a)) = (large.find(w), small.find(w)) {
                    hits.push((a as u32, b as u32));
                }
            }
        }
        // Ascending slot order = the probe tier's emission order; after
        // dedup a slot appears once per live common neighbour.
        hits.sort_unstable();
        hits.dedup();
        for &(a, b) in &hits {
            hit(small.items[a as usize], a, b);
        }
        cell.set(hits);
    });
}

impl Adjacency {
    /// Exclusive upper bound on the currently live edge IDs: every ID
    /// returned by [`Adjacency::insert_full`] or stored in the
    /// neighbourhood arrays is `< id_bound()`. Use it to size dense side
    /// arrays indexed by [`EdgeId`].
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.endpoints.len()
    }

    /// Inserts an edge, returning its freshly minted arena ID (`None` if
    /// the edge was already present). IDs of removed edges are recycled.
    pub fn insert_full(&mut self, e: Edge) -> Option<EdgeId> {
        self.insert_impl(e)
    }

    /// Removes an edge, returning the arena ID it held (now freed for
    /// recycling) if it was present.
    pub fn remove_full(&mut self, e: Edge) -> Option<EdgeId> {
        self.remove_impl(e)
    }

    /// Removes a live edge by its arena ID — the reservoir eviction
    /// path — returning its endpoints. *Find-free*: both neighbour-set
    /// slots come straight from the mirror table.
    ///
    /// # Panics
    ///
    /// The ID must be live (obtained from this graph and not removed
    /// since); a stale ID would silently remove the wrong edge, so the
    /// slot/endpoint cross-check stays on in release builds (one array
    /// load — far cheaper than the find scan it replaced).
    pub fn remove_by_id(&mut self, id: EdgeId) -> Edge {
        let e = self.endpoints[id as usize];
        let (u, v) = e.endpoints();
        let [u_slot, v_slot] = self.mirror[id as usize];
        assert_eq!(
            self.adj.get(&u).and_then(|s| s.items.get(u_slot as usize)),
            Some(&v),
            "remove_by_id of a stale edge ID"
        );
        self.detach(u, u_slot as usize);
        self.detach(v, v_slot as usize);
        self.free.push(id);
        self.num_edges -= 1;
        e
    }

    /// The arena ID of a live edge, if present.
    #[inline]
    pub fn edge_id(&self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        self.edge_id_between(u, v)
    }

    /// The arena ID of the edge between `a` and `b`, if present
    /// (order-insensitive; `None` for `a == b`). One membership probe —
    /// the ID rides along with the slot the probe finds.
    #[inline]
    pub fn edge_id_between(&self, a: Vertex, b: Vertex) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        let set = self.adj.get(&a)?;
        set.find(b).map(|i| set.ids[i])
    }

    /// The endpoints of a live edge ID.
    ///
    /// The ID must be live (obtained from this graph and not removed
    /// since); stale IDs return arbitrary previously stored endpoints.
    #[inline]
    pub fn edge_endpoints(&self, id: EdgeId) -> Edge {
        self.endpoints[id as usize]
    }

    /// The neighbours of `x` and the IDs of the connecting edges, as
    /// parallel dense slices (`ids[i]` is the ID of `(x, vertices[i])`).
    #[inline]
    pub fn neighbor_entries(&self, x: Vertex) -> (&[Vertex], &[EdgeId]) {
        self.adj.get(&x).map_or((&[], &[]), |s| (&s.items, &s.ids))
    }

    /// Calls `f(w, id(u,w), id(v,w))` for each common neighbour `w` of
    /// `u` and `v`, returning `(deg u, deg v)`.
    ///
    /// This is the ID-carrying face of the shared galloping kernel (see
    /// [`AdjacencyBase::for_each_common_neighbor`]): the edge IDs ride
    /// along with the slots the intersection touches anyway, so
    /// surfacing them is free — the zero-hash path the estimators
    /// enumerate partner edges through. The degrees are a free
    /// by-product of the two vertex lookups the intersection performs
    /// regardless; callers that need them (the state extraction of
    /// Eq. 19–22) avoid two further hash probes.
    #[inline]
    pub fn for_each_common_edge(
        &self,
        u: Vertex,
        v: Vertex,
        f: impl FnMut(Vertex, EdgeId, EdgeId),
    ) -> (usize, usize) {
        self.for_each_common_entry(u, v, f)
    }

    /// Collects the common neighbours of `u` and `v` with their edge IDs
    /// into `out` (cleared first), returning `(deg u, deg v)`; `eu`/`ev`
    /// follow the `(u, v)` argument order.
    pub fn common_edges_into(
        &self,
        u: Vertex,
        v: Vertex,
        out: &mut Vec<CommonEdge>,
    ) -> (usize, usize) {
        out.clear();
        self.for_each_common_edge(u, v, |w, eu, ev| out.push(CommonEdge { w, eu, ev }))
    }
}

/// A borrowed view of one vertex's neighbourhood, for repeated probes
/// without re-resolving the vertex (see [`AdjacencyBase::neighborhood`]).
pub struct Neighborhood<'a, P: IdPayload = EdgeId>(Option<&'a NeighborSet<P>>);

impl<P: IdPayload> Copy for Neighborhood<'_, P> {}

impl<P: IdPayload> Clone for Neighborhood<'_, P> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<P: IdPayload> Neighborhood<'_, P> {
    /// Degree of the vertex (0 if it has no live edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.map_or(0, NeighborSet::len)
    }

    /// True if the vertex has no live edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `v` is a neighbour.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.0.is_some_and(|s| s.contains(v))
    }
}

impl Neighborhood<'_, EdgeId> {
    /// The arena ID of the edge to `v`, if `v` is a neighbour.
    #[inline]
    pub fn id_of(&self, v: Vertex) -> Option<EdgeId> {
        let s = self.0?;
        s.find(v).map(|i| s.ids[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = Adjacency::new();
        let e = Edge::new(1, 2);
        assert!(g.insert(e));
        assert!(!g.insert(e), "duplicate insert must report false");
        assert!(g.contains(e));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 2);
        assert!(g.remove(e));
        assert!(!g.remove(e), "duplicate remove must report false");
        assert!(!g.contains(e));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 0, "isolated vertices must be pruned");
    }

    #[test]
    fn vertex_only_variant_tracks_no_arena() {
        let mut g = VertexAdjacency::new();
        assert!(g.insert(Edge::new(1, 2)));
        assert!(!g.insert(Edge::new(1, 2)));
        assert!(g.insert(Edge::new(2, 3)));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.common_neighbor_count(1, 3), 1);
        g.check_invariants();
        assert!(g.remove(Edge::new(1, 2)));
        assert!(!g.remove(Edge::new(1, 2)));
        g.check_invariants();
    }

    #[test]
    fn ids_are_minted_and_recycled() {
        let mut g = Adjacency::new();
        let a = g.insert_full(Edge::new(1, 2)).unwrap();
        let b = g.insert_full(Edge::new(2, 3)).unwrap();
        assert_ne!(a, b);
        assert_eq!(g.insert_full(Edge::new(1, 2)), None, "duplicate yields no ID");
        assert_eq!(g.edge_id(Edge::new(1, 2)), Some(a));
        assert_eq!(g.edge_id_between(3, 2), Some(b));
        assert_eq!(g.edge_id_between(2, 2), None);
        assert_eq!(g.edge_endpoints(a), Edge::new(1, 2));
        assert_eq!(g.remove_full(Edge::new(1, 2)), Some(a));
        // LIFO recycling: the freed ID is handed to the next insertion.
        let c = g.insert_full(Edge::new(5, 6)).unwrap();
        assert_eq!(c, a);
        assert_eq!(g.edge_endpoints(c), Edge::new(5, 6));
        assert_eq!(g.id_bound(), 2, "ID space bounded by peak live edges");
        g.check_invariants();
    }

    #[test]
    fn neighbor_entries_are_parallel() {
        let mut g = Adjacency::new();
        let ids: Vec<EdgeId> =
            [2, 3, 4].iter().map(|&v| g.insert_full(Edge::new(1, v)).unwrap()).collect();
        let (vs, es) = g.neighbor_entries(1);
        assert_eq!(vs.len(), 3);
        assert_eq!(es.len(), 3);
        for (i, &v) in vs.iter().enumerate() {
            assert_eq!(g.edge_id(Edge::new(1, v)), Some(es[i]));
            assert!(ids.contains(&es[i]));
        }
        assert_eq!(g.neighbor_entries(99), (&[] as &[Vertex], &[] as &[EdgeId]));
    }

    #[test]
    fn degree_and_neighbors() {
        let mut g = Adjacency::new();
        for v in [2, 3, 4] {
            g.insert(Edge::new(1, v));
        }
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(99), 0);
        let ns: BTreeSet<_> = g.neighbors(1).collect();
        assert_eq!(ns, BTreeSet::from([2, 3, 4]));
        assert_eq!(g.neighbors(99).count(), 0);
        assert_eq!(g.neighbor_slice(99), &[] as &[Vertex]);
        let mut slice: Vec<_> = g.neighbor_slice(1).to_vec();
        slice.sort_unstable();
        assert_eq!(slice, vec![2, 3, 4]);
    }

    #[test]
    fn common_neighbors() {
        // Triangle 1-2-3 plus pendant 4 on 1.
        let mut g = Adjacency::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (1, 4)] {
            g.insert(Edge::new(a, b));
        }
        let mut buf = Vec::new();
        g.common_neighbors_into(1, 2, &mut buf);
        assert_eq!(buf, vec![3]);
        assert_eq!(g.common_neighbor_count(1, 2), 1);
        assert_eq!(g.common_neighbor_count(3, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(2, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(1, 99), 0);
    }

    #[test]
    fn common_edges_carry_correct_ids() {
        let mut g = Adjacency::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (1, 4), (2, 4)] {
            g.insert(Edge::new(a, b));
        }
        let mut buf = Vec::new();
        g.common_edges_into(1, 2, &mut buf);
        assert_eq!(buf.len(), 2); // w ∈ {3, 4}
        for ce in &buf {
            assert_eq!(g.edge_id(Edge::new(1, ce.w)), Some(ce.eu), "eu must be (u,w)");
            assert_eq!(g.edge_id(Edge::new(2, ce.w)), Some(ce.ev), "ev must be (v,w)");
        }
        // Argument order flips the roles.
        let mut flipped = Vec::new();
        g.common_edges_into(2, 1, &mut flipped);
        for ce in &flipped {
            assert_eq!(g.edge_id(Edge::new(2, ce.w)), Some(ce.eu));
            assert_eq!(g.edge_id(Edge::new(1, ce.w)), Some(ce.ev));
        }
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = Adjacency::new();
        let edges = [(1, 2), (2, 3), (1, 3), (4, 5)];
        for (a, b) in edges {
            g.insert(Edge::new(a, b));
        }
        let got: BTreeSet<_> = g.edges().collect();
        let want: BTreeSet<_> = edges.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn adjacent_is_symmetric_and_loop_free() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        assert!(g.adjacent(1, 2));
        assert!(g.adjacent(2, 1));
        assert!(!g.adjacent(1, 1));
        assert!(!g.adjacent(1, 3));
    }

    #[test]
    fn clear_resets() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.id_bound(), 0, "clear must reset the arena");
    }

    #[test]
    fn spill_to_indexed_storage_preserves_semantics() {
        // Grow a hub far past SPILL_THRESHOLD, then churn it.
        let mut g = Adjacency::new();
        let n = (3 * SPILL_THRESHOLD) as Vertex;
        for v in 1..=n {
            assert!(g.insert(Edge::new(0, v)));
        }
        assert_eq!(g.degree(0), n as usize);
        for v in 1..=n {
            assert!(g.adjacent(0, v));
        }
        g.check_invariants();
        // Remove every odd neighbour (exercises indexed swap_remove).
        for v in (1..=n).step_by(2) {
            assert!(g.remove(Edge::new(0, v)));
        }
        g.check_invariants();
        for v in 1..=n {
            assert_eq!(g.adjacent(0, v), v % 2 == 0, "vertex {v}");
        }
        // Re-insert into the spilled set.
        assert!(g.insert(Edge::new(0, 1)));
        assert!(!g.insert(Edge::new(0, 1)));
        g.check_invariants();
        // Spilled sets must still resolve IDs through the index.
        for v in 2..=n {
            if v % 2 == 0 {
                let id = g.edge_id(Edge::new(0, v)).expect("live edge has an ID");
                assert_eq!(g.edge_endpoints(id), Edge::new(0, v));
            }
        }
    }

    /// Drives two hubs across the shadow threshold both ways — grow past
    /// it, delete far below it, re-insert past it again — in repeated
    /// waves, checking membership, IDs and the hub–hub intersection
    /// throughout. The shadow is retained once attached (its lazy
    /// snapshot shrinks via dead-triggered rebuilds); below-threshold
    /// operation with a shadow present is exactly the state this pins.
    #[test]
    fn shadow_threshold_crossing_waves() {
        let mut g = Adjacency::new();
        let top = (2 * SHADOW_THRESHOLD) as Vertex;
        let (hub_a, hub_b) = (5000u64, 6000u64);
        g.insert(Edge::new(hub_a, hub_b));
        // Persistent common neighbours so the intersection stays
        // non-trivial across waves.
        for obs in [7000u64, 7001, 7002] {
            g.insert(Edge::new(hub_a, obs));
            g.insert(Edge::new(hub_b, obs));
        }
        for wave in 0..4u64 {
            // Grow both hubs past the shadow threshold with disjoint
            // leaf ranges (no new commons).
            for v in 1..=top {
                assert!(g.insert(Edge::new(hub_a, v)), "wave {wave}: a-leaf {v}");
                assert!(g.insert(Edge::new(hub_b, 100_000 + v)), "wave {wave}: b-leaf {v}");
            }
            g.check_invariants();
            assert!(g.degree(hub_a) > SHADOW_THRESHOLD);
            let mut got = Vec::new();
            g.for_each_common_edge(hub_a, hub_b, |w, eu, ev| {
                assert_eq!(g.edge_id(Edge::new(hub_a, w)), Some(eu));
                assert_eq!(g.edge_id(Edge::new(hub_b, w)), Some(ev));
                got.push(w);
            });
            let want: BTreeSet<Vertex> = BTreeSet::from([7000, 7001, 7002]);
            assert_eq!(got.iter().copied().collect::<BTreeSet<_>>(), want, "wave {wave}");
            // Shrink far below the threshold again.
            for v in 1..=top {
                assert!(g.remove(Edge::new(hub_a, v)), "wave {wave}: remove a-leaf {v}");
                assert!(g.remove(Edge::new(hub_b, 100_000 + v)), "wave {wave}: remove b-leaf {v}");
            }
            g.check_invariants();
            assert_eq!(g.degree(hub_a), 4);
            assert_eq!(g.common_neighbor_count(hub_a, hub_b), 3);
        }
    }

    #[test]
    fn galloping_tier_matches_linear_probes() {
        // Two hubs far past the shadow threshold sharing an interleaved
        // subset of neighbours, with long non-common runs on both sides
        // — the galloping tier must skip them and still report exactly
        // the common set, in the iterated side's dense slot order.
        let mut g = Adjacency::new();
        let (a, b) = (10_000u64, 20_000u64);
        g.insert(Edge::new(a, b));
        // Common neighbours: multiples of 7 (inserted in a scattered
        // order so insertion order ≠ vertex order).
        let mut common: Vec<Vertex> = (1..=20u64).map(|k| 7 * k).collect();
        common.swap(0, 19);
        common.swap(3, 11);
        for &w in &common {
            g.insert(Edge::new(a, w));
            g.insert(Edge::new(b, w));
        }
        // Non-common runs: a gets 100 odd-ball vertices below, b gets
        // 100 above, so the merge must gallop over both tails.
        for k in 0..100u64 {
            g.insert(Edge::new(a, 1_000 + 2 * k));
            g.insert(Edge::new(b, 30_000 + 2 * k));
        }
        // Churn after the snapshots were built: delete some commons and
        // some tail vertices, add fresh commons (pending-path coverage).
        for k in [2u64, 9] {
            g.remove(Edge::new(a, 7 * k));
            g.remove(Edge::new(b, 7 * k));
        }
        for w in [500u64, 501, 502] {
            g.insert(Edge::new(a, w));
            g.insert(Edge::new(b, w));
        }
        g.check_invariants();
        let mut got = Vec::new();
        let degs = g.for_each_common_edge(a, b, |w, eu, ev| {
            assert_eq!(g.edge_id(Edge::new(a, w)), Some(eu));
            assert_eq!(g.edge_id(Edge::new(b, w)), Some(ev));
            got.push(w);
        });
        assert_eq!(degs, (g.degree(a), g.degree(b)));
        // Same set AND same order as the probe-tier kernel would emit:
        // the iterated (smaller) side's dense slot order.
        let small = if g.degree(a) <= g.degree(b) { a } else { b };
        let want: Vec<Vertex> =
            g.neighbors(small).filter(|&w| g.adjacent(a, w) && g.adjacent(b, w)).collect();
        assert_eq!(got, want);
        assert_eq!(got.len(), 21); // 20 - 2 deleted + 3 fresh
    }

    /// A callback may re-enter common-neighbour queries on the same
    /// shadowed vertices (the shadow borrows are released before
    /// emission) — the pre-galloping kernel allowed this, so the
    /// galloping tier must too.
    #[test]
    fn galloping_tier_callbacks_may_reenter() {
        let mut g = Adjacency::new();
        let (a, b, c) = (1u64, 2u64, 3u64);
        for (x, y) in [(a, b), (a, c), (b, c)] {
            g.insert(Edge::new(x, y));
        }
        // Push all three past the shadow threshold with shared leaves.
        let top = (2 * SHADOW_THRESHOLD) as Vertex;
        for v in 100..(100 + top) {
            for hub in [a, b, c] {
                g.insert(Edge::new(hub, v));
            }
        }
        let mut outer = 0;
        let mut inner_total = 0;
        g.for_each_common_neighbor(a, b, |_| {
            outer += 1;
            // Re-enters the galloping tier on overlapping shadowed
            // vertices while the outer enumeration is mid-flight.
            inner_total += g.common_neighbor_count(a, c);
        });
        assert_eq!(outer, top as usize + 1); // leaves + c
        assert_eq!(inner_total, outer * (top as usize + 1)); // leaves + b per call
    }

    /// Reference model: a plain set of canonical edges.
    #[derive(Default)]
    struct Model(BTreeSet<Edge>);

    impl Model {
        fn degree(&self, x: Vertex) -> usize {
            self.0.iter().filter(|e| e.touches(x)).count()
        }
        fn common(&self, u: Vertex, v: Vertex) -> BTreeSet<Vertex> {
            let nbrs = |x: Vertex| -> BTreeSet<Vertex> {
                self.0.iter().filter(|e| e.touches(x)).map(|e| e.other(x)).collect()
            };
            nbrs(u).intersection(&nbrs(v)).copied().collect()
        }
    }

    proptest! {
        /// The adjacency structure agrees with a naive set-of-edges model
        /// under arbitrary interleavings of inserts and removes.
        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..12, 0u64..12), 0..300),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    let was = m.0.remove(&e);
                    prop_assert_eq!(g.remove(e), was);
                }
            }
            g.check_invariants();
            prop_assert_eq!(g.num_edges(), m.0.len());
            let got: BTreeSet<_> = g.edges().collect();
            prop_assert_eq!(&got, &m.0);
            for x in 0u64..12 {
                prop_assert_eq!(g.degree(x), m.degree(x));
            }
            for u in 0u64..12 {
                for v in (u + 1)..12 {
                    let mut buf = Vec::new();
                    g.common_neighbors_into(u, v, &mut buf);
                    let got: BTreeSet<_> = buf.into_iter().collect();
                    prop_assert_eq!(got, m.common(u, v));
                }
            }
        }

        /// The hybrid storage agrees with the model *around the spill
        /// threshold*: a small vertex universe over many ops forces hub
        /// degrees through SPILL_THRESHOLD repeatedly.
        #[test]
        fn prop_spill_boundary_matches_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..26, 0u64..26), 0..600),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    prop_assert_eq!(g.remove(e), m.0.remove(&e));
                }
            }
            g.check_invariants();
            for x in 0u64..26 {
                prop_assert_eq!(g.degree(x), m.degree(x));
                let mut got: Vec<_> = g.neighbor_slice(x).to_vec();
                got.sort_unstable();
                let want: Vec<_> = m
                    .0
                    .iter()
                    .filter(|e| e.touches(x))
                    .map(|e| e.other(x))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }

        /// Insert/delete/re-insert *waves* centred on two hub vertices
        /// drive their sets across the shadow threshold in both
        /// directions — stale snapshot entries, moved slots and pending
        /// inserts all in play — while a weighted and an ID-free
        /// adjacency process the identical op sequence; membership,
        /// degrees, the hub–hub intersection (set *and* emission order)
        /// and the invariants must agree with the model after every
        /// wave.
        #[test]
        fn prop_threshold_waves_keep_kernels_coherent(
            waves in proptest::collection::vec(
                (2u64..70, proptest::collection::vec(0u64..70, 8..48), any::<bool>()),
                1..10,
            ),
        ) {
            let (hub_a, hub_b) = (500u64, 501u64);
            let mut g = Adjacency::new();
            let mut lean = VertexAdjacency::new();
            let mut m = Model::default();
            let apply = |g: &mut Adjacency,
                         lean: &mut VertexAdjacency,
                         m: &mut Model,
                         insert: bool,
                         e: Edge| {
                if insert {
                    let was = m.0.insert(e);
                    assert_eq!(g.insert(e), was);
                    assert_eq!(lean.insert(e), was);
                } else {
                    let was = m.0.remove(&e);
                    assert_eq!(g.remove(e), was);
                    assert_eq!(lean.remove(e), was);
                }
            };
            apply(&mut g, &mut lean, &mut m, true, Edge::new(hub_a, hub_b));
            for (salt, members, delete_phase) in waves {
                for &x in &members {
                    let v = 1000 + ((x * 31 + salt) % 90);
                    for hub in [hub_a, hub_b] {
                        apply(&mut g, &mut lean, &mut m, true, Edge::new(hub, v));
                    }
                }
                if delete_phase {
                    for &x in &members {
                        let v = 1000 + ((x * 31 + salt) % 90);
                        for hub in [hub_a, hub_b] {
                            apply(&mut g, &mut lean, &mut m, false, Edge::new(hub, v));
                        }
                    }
                }
                g.check_invariants();
                lean.check_invariants();
                prop_assert_eq!(g.degree(hub_a), m.degree(hub_a));
                prop_assert_eq!(lean.degree(hub_b), m.degree(hub_b));
                // The hub–hub intersection: same set as the model, and
                // the tracked and ID-free kernels emit the identical
                // order (the iterated side's dense slot order).
                let mut tracked = Vec::new();
                g.for_each_common_edge(hub_a, hub_b, |w, eu, ev| {
                    assert_eq!(g.edge_id(Edge::new(hub_a, w)), Some(eu));
                    assert_eq!(g.edge_id(Edge::new(hub_b, w)), Some(ev));
                    tracked.push(w);
                });
                let mut lean_hits = Vec::new();
                lean.for_each_common_neighbor(hub_a, hub_b, |w| lean_hits.push(w));
                prop_assert_eq!(&tracked, &lean_hits, "tracked vs ID-free emission order");
                let got: BTreeSet<_> = tracked.into_iter().collect();
                prop_assert_eq!(got, m.common(hub_a, hub_b));
            }
        }

        /// Edge IDs stay coherent under churn: every live edge resolves
        /// to an ID whose endpoints round-trip, IDs are dense (bounded by
        /// peak live count), and the arena partition invariant holds
        /// after every operation.
        #[test]
        fn prop_arena_ids_coherent_under_churn(
            ops in proptest::collection::vec((any::<bool>(), 0u64..10, 0u64..10), 0..400),
        ) {
            let mut g = Adjacency::new();
            let mut live = 0usize;
            let mut peak = 0usize;
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    if let Some(id) = g.insert_full(e) {
                        live += 1;
                        peak = peak.max(live);
                        prop_assert_eq!(g.edge_endpoints(id), e);
                        prop_assert_eq!(g.edge_id(e), Some(id));
                    }
                } else if let Some(id) = g.remove_full(e) {
                    live -= 1;
                    prop_assert!((id as usize) < g.id_bound());
                    prop_assert_eq!(g.edge_id(e), None);
                }
            }
            g.check_invariants();
            prop_assert!(g.id_bound() <= peak, "ID space exceeded peak live edges");
            for e in g.edges().collect::<Vec<_>>() {
                let id = g.edge_id(e).expect("live edge must have an ID");
                prop_assert_eq!(g.edge_endpoints(id), e);
            }
        }

        /// Layout snapshot/restore is the identity on everything
        /// observable: slot orders, edge IDs, the free list (and so all
        /// future ID mints), and the canonical re-snapshot bytes.
        #[test]
        fn prop_layout_round_trip_under_churn(
            ops in proptest::collection::vec((any::<bool>(), 0u64..40, 0u64..40), 0..500),
            extra in proptest::collection::vec((any::<bool>(), 0u64..40, 0u64..40), 0..60),
        ) {
            let mut g = Adjacency::new();
            let mut lean = VertexAdjacency::new();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    g.insert(e);
                    lean.insert(e);
                } else {
                    g.remove(e);
                    lean.remove(e);
                }
            }
            let layout = g.layout_snapshot();
            let mut r = Adjacency::from_layout(&layout);
            r.check_invariants();
            prop_assert_eq!(r.num_edges(), g.num_edges());
            prop_assert_eq!(r.id_bound(), g.id_bound());
            // Slot orders and per-slot IDs verbatim.
            for (u, _) in &layout.vertices {
                prop_assert_eq!(r.neighbor_entries(*u), g.neighbor_entries(*u));
            }
            // Canonical snapshots agree byte-for-byte in structure.
            prop_assert_eq!(&r.layout_snapshot(), &layout);
            // Future mutations agree exactly — same mints, same slots.
            for (insert, a, b) in extra {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(r.insert_full(e), g.insert_full(e));
                } else {
                    prop_assert_eq!(r.remove_full(e), g.remove_full(e));
                }
            }
            prop_assert_eq!(&r.layout_snapshot(), &g.layout_snapshot());
            r.check_invariants();
            // The ID-free variant round-trips too.
            let lean_layout = lean.layout_snapshot();
            let lr = VertexAdjacency::from_layout(&lean_layout);
            lr.check_invariants();
            prop_assert_eq!(&lr.layout_snapshot(), &lean_layout);
            prop_assert_eq!(lr.num_edges(), lean.num_edges());
        }
    }

    /// Restore re-attaches the hash index and (unbuilt) shadow from the
    /// current degree, so a restored hub serves the galloping tier with
    /// the original's emission order.
    #[test]
    fn layout_restore_reattaches_acceleration_state() {
        let mut g = Adjacency::new();
        let (a, b) = (900u64, 901u64);
        g.insert(Edge::new(a, b));
        let top = (2 * SHADOW_THRESHOLD) as Vertex;
        for v in 1..=top {
            g.insert(Edge::new(a, v));
            g.insert(Edge::new(b, v));
        }
        // Churn so slot order ≠ insertion order.
        for v in (1..=top).step_by(3) {
            g.remove(Edge::new(a, v));
        }
        let r = Adjacency::from_layout(&g.layout_snapshot());
        r.check_invariants();
        let mut got = Vec::new();
        r.for_each_common_edge(a, b, |w, eu, ev| {
            assert_eq!(r.edge_id(Edge::new(a, w)), Some(eu));
            assert_eq!(r.edge_id(Edge::new(b, w)), Some(ev));
            got.push(w);
        });
        let mut want = Vec::new();
        g.for_each_common_edge(a, b, |w, _, _| want.push(w));
        assert_eq!(got, want, "restored hub must emit in the original slot order");
    }
}
