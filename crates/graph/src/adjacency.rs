//! Dynamic adjacency structure shared by the samplers and the exact
//! counter, built around a **dense edge-ID arena**.
//!
//! The structure supports the three operations every algorithm in the
//! paper performs per event: edge insert, edge delete, and neighbourhood
//! queries (degree, membership, iteration, common-neighbour intersection).
//! The common-neighbour intersection iterates the smaller neighbourhood
//! and probes the larger, i.e. `O(min(deg u, deg v))` — this is the
//! `γ(M)` term in the complexity analysis of Theorems 3/5.
//!
//! # Storage
//!
//! Neighbourhoods are stored as dense parallel arrays of
//! `(neighbour, edge id)` (cache-local iteration — the enumeration hot
//! path walks these slices millions of times per run) with a lazily
//! attached hash index once a vertex grows past [`SPILL_THRESHOLD`]
//! neighbours, keeping membership probes O(1) for hubs while small
//! neighbourhoods (the overwhelming majority under reservoir budgets)
//! stay a couple of cache lines with branch-predictable linear scans. No
//! query allocates: callers either consume [`Adjacency::neighbor_slice`]
//! directly or reuse a scratch buffer via
//! [`Adjacency::common_neighbors_into`] / [`Adjacency::common_edges_into`].
//!
//! # The edge-ID arena
//!
//! Every live edge owns a dense [`EdgeId`] minted by a slab allocator
//! (freed IDs are recycled LIFO), so the ID space never exceeds the peak
//! number of *concurrently* live edges — under reservoir budgets, the
//! reservoir capacity. Both directions of an edge store the same ID, and
//! the intersection kernels surface partner **edge IDs** directly
//! ([`Adjacency::for_each_common_edge`]), which is what lets the
//! estimators upstream replace per-partner `Edge`-keyed hash lookups
//! with plain dense-array reads.

use crate::edge::{Edge, Vertex};
use crate::fxhash::FxHashMap;

/// Dense identifier of a live edge, minted by the [`Adjacency`] arena.
///
/// IDs are recycled when edges are removed, so they stay small (bounded
/// by the peak live-edge count) and can index plain `Vec`s. An ID is
/// only meaningful while its edge is live; holding one across a
/// [`Adjacency::remove`] of that edge is a logic error.
pub type EdgeId = u32;

/// A common neighbour `w` of a vertex pair `(u, v)` together with the
/// IDs of the two edges connecting it: `eu` is the ID of `(u, w)` and
/// `ev` the ID of `(v, w)` (with respect to the argument order of the
/// query that produced it).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CommonEdge {
    /// The common neighbour.
    pub w: Vertex,
    /// ID of the edge between the first query vertex and `w`.
    pub eu: EdgeId,
    /// ID of the edge between the second query vertex and `w`.
    pub ev: EdgeId,
}

/// Neighbourhood size beyond which a hash index is attached for O(1)
/// membership probes. Below it, linear scans over the dense array win on
/// real hardware (no hashing, no pointer chase).
pub const SPILL_THRESHOLD: usize = 16;

/// One vertex's neighbourhood: dense parallel `(vertex, edge id)` arrays,
/// plus a position index once the vertex spills past [`SPILL_THRESHOLD`].
#[derive(Clone, Default, Debug)]
struct NeighborSet {
    items: Vec<Vertex>,
    /// `ids[i]` is the arena ID of the edge `(owner, items[i])`.
    ids: Vec<EdgeId>,
    /// vertex → slot in `items`; `Some` once spilled (kept for the rest
    /// of the set's life — churn around the threshold must not thrash).
    index: Option<FxHashMap<Vertex, u32>>,
}

impl NeighborSet {
    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Slot of `v`, if present.
    ///
    /// Unspilled sets screen with `contains` before locating the slot:
    /// the membership scan vectorises (no index to carry), and probe
    /// workloads — the common-neighbour intersections — are miss-heavy,
    /// so the extra position pass runs only on the rare hit.
    #[inline]
    fn find(&self, v: Vertex) -> Option<usize> {
        match &self.index {
            Some(idx) => idx.get(&v).map(|&i| i as usize),
            None => {
                if self.items.contains(&v) {
                    self.items.iter().position(|&w| w == v)
                } else {
                    None
                }
            }
        }
    }

    #[inline]
    fn contains(&self, v: Vertex) -> bool {
        match &self.index {
            Some(idx) => idx.contains_key(&v),
            None => self.items.contains(&v),
        }
    }

    /// Appends `(v, id)`; the caller guarantees `v` is absent.
    fn push_unchecked(&mut self, v: Vertex, id: EdgeId) {
        debug_assert!(!self.contains(v), "push_unchecked of a present neighbour");
        if let Some(idx) = &mut self.index {
            idx.insert(v, self.items.len() as u32);
        }
        self.items.push(v);
        self.ids.push(id);
        if self.index.is_none() && self.items.len() > SPILL_THRESHOLD {
            self.index = Some(self.items.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect());
        }
    }

    /// Inserts `(v, id)` unless `v` is already present; the duplicate
    /// check and the insertion share one probe. Returns `true` on insert.
    fn insert_checked(&mut self, v: Vertex, id: EdgeId) -> bool {
        match &mut self.index {
            Some(idx) => {
                if idx.contains_key(&v) {
                    return false;
                }
                idx.insert(v, self.items.len() as u32);
                self.items.push(v);
                self.ids.push(id);
                true
            }
            None => {
                if self.items.contains(&v) {
                    return false;
                }
                self.push_unchecked(v, id);
                true
            }
        }
    }

    /// Removes `v`, returning the stored edge ID if it was present.
    fn remove(&mut self, v: Vertex) -> Option<EdgeId> {
        let pos = match &mut self.index {
            Some(idx) => idx.remove(&v)? as usize,
            None => self.items.iter().position(|&w| w == v)?,
        };
        self.items.swap_remove(pos);
        let id = self.ids.swap_remove(pos);
        if pos < self.items.len() {
            if let Some(idx) = &mut self.index {
                idx.insert(self.items[pos], pos as u32);
            }
        }
        Some(id)
    }

    #[inline]
    fn as_slice(&self) -> &[Vertex] {
        &self.items
    }
}

/// A dynamic, undirected, simple-graph adjacency structure.
///
/// Vertices with no incident edges are pruned eagerly so the memory
/// footprint tracks the number of live edges — important for reservoirs
/// whose content churns over millions of events.
#[derive(Clone, Default, Debug)]
pub struct Adjacency {
    adj: FxHashMap<Vertex, NeighborSet>,
    num_edges: usize,
    /// Arena: endpoints per edge ID. Entries of freed IDs are stale until
    /// the ID is recycled.
    endpoints: Vec<Edge>,
    /// Freed IDs awaiting recycling (LIFO, so the ID space stays dense).
    free: Vec<EdgeId>,
}

impl Adjacency {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for roughly `vertices` vertices.
    pub fn with_capacity(vertices: usize) -> Self {
        Self {
            adj: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            num_edges: 0,
            endpoints: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices with at least one incident edge.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Exclusive upper bound on the currently live edge IDs: every ID
    /// returned by [`Adjacency::insert_full`] or stored in the
    /// neighbourhood arrays is `< id_bound()`. Use it to size dense side
    /// arrays indexed by [`EdgeId`].
    #[inline]
    pub fn id_bound(&self) -> usize {
        self.endpoints.len()
    }

    /// Inserts an edge. Returns `true` if the edge was not already present.
    #[inline]
    pub fn insert(&mut self, e: Edge) -> bool {
        self.insert_full(e).is_some()
    }

    /// Inserts an edge, returning its freshly minted arena ID (`None` if
    /// the edge was already present). IDs of removed edges are recycled.
    pub fn insert_full(&mut self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        // Peek the ID the arena will assign, so the duplicate check and
        // the forward insertion share a single probe of u's set.
        let id = match self.free.last() {
            Some(&id) => id,
            None => EdgeId::try_from(self.endpoints.len()).expect("edge-ID arena overflow"),
        };
        if !self.adj.entry(u).or_default().insert_checked(v, id) {
            return None;
        }
        // Commit the mint.
        match self.free.pop() {
            Some(_) => self.endpoints[id as usize] = e,
            None => self.endpoints.push(e),
        }
        self.adj.entry(v).or_default().push_unchecked(u, id);
        self.num_edges += 1;
        Some(id)
    }

    /// Removes an edge. Returns `true` if the edge was present.
    #[inline]
    pub fn remove(&mut self, e: Edge) -> bool {
        self.remove_full(e).is_some()
    }

    /// Removes an edge, returning the arena ID it held (now freed for
    /// recycling) if it was present.
    pub fn remove_full(&mut self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        let id = match self.adj.get_mut(&u) {
            Some(set) => set.remove(v)?,
            None => return None,
        };
        if self.adj.get(&u).is_some_and(NeighborSet::is_empty) {
            self.adj.remove(&u);
        }
        let set = self.adj.get_mut(&v).expect("adjacency symmetry violated: missing reverse entry");
        let id2 = set.remove(u).expect("adjacency symmetry violated: missing reverse neighbour");
        debug_assert_eq!(id, id2, "edge ID asymmetry for {e:?}");
        if set.is_empty() {
            self.adj.remove(&v);
        }
        self.free.push(id);
        self.num_edges -= 1;
        Some(id)
    }

    /// True if the edge is present.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// True if `u` and `v` are adjacent (order-insensitive; false for `u == v`).
    #[inline]
    pub fn adjacent(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// The arena ID of a live edge, if present.
    #[inline]
    pub fn edge_id(&self, e: Edge) -> Option<EdgeId> {
        let (u, v) = e.endpoints();
        self.edge_id_between(u, v)
    }

    /// The arena ID of the edge between `a` and `b`, if present
    /// (order-insensitive; `None` for `a == b`). One membership probe —
    /// the ID rides along with the slot the probe finds.
    #[inline]
    pub fn edge_id_between(&self, a: Vertex, b: Vertex) -> Option<EdgeId> {
        if a == b {
            return None;
        }
        let set = self.adj.get(&a)?;
        set.find(b).map(|i| set.ids[i])
    }

    /// The endpoints of a live edge ID.
    ///
    /// The ID must be live (obtained from this graph and not removed
    /// since); stale IDs return arbitrary previously stored endpoints.
    #[inline]
    pub fn edge_endpoints(&self, id: EdgeId) -> Edge {
        self.endpoints[id as usize]
    }

    /// Degree of `x` (0 if unknown).
    #[inline]
    pub fn degree(&self, x: Vertex) -> usize {
        self.adj.get(&x).map_or(0, NeighborSet::len)
    }

    /// The neighbours of `x` as a dense slice (empty if unknown).
    ///
    /// This is the allocation-free view the enumeration hot paths walk;
    /// order is unspecified but deterministic for a given event history.
    #[inline]
    pub fn neighbor_slice(&self, x: Vertex) -> &[Vertex] {
        self.adj.get(&x).map_or(&[], NeighborSet::as_slice)
    }

    /// The neighbours of `x` and the IDs of the connecting edges, as
    /// parallel dense slices (`ids[i]` is the ID of `(x, vertices[i])`).
    #[inline]
    pub fn neighbor_entries(&self, x: Vertex) -> (&[Vertex], &[EdgeId]) {
        self.adj.get(&x).map_or((&[], &[]), |s| (&s.items, &s.ids))
    }

    /// Iterates the neighbours of `x`.
    pub fn neighbors(&self, x: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.neighbor_slice(x).iter().copied()
    }

    /// Iterates the vertices with at least one incident edge.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates all live edges (each once, in canonical form).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().flat_map(|(&u, set)| {
            set.as_slice().iter().copied().filter(move |&v| u < v).map(move |v| Edge::new(u, v))
        })
    }

    /// Calls `f` for each common neighbour of `u` and `v`.
    ///
    /// Iterates the smaller neighbourhood's dense array and probes the
    /// larger: `O(min(deg u, deg v))` probes, each O(1) once the larger
    /// side has spilled to an indexed set. Pure membership probes — the
    /// counting kernels that don't need edge IDs skip the slot
    /// resolution of [`Adjacency::for_each_common_edge`] entirely.
    #[inline]
    pub fn for_each_common_neighbor(&self, u: Vertex, v: Vertex, mut f: impl FnMut(Vertex)) {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return;
        };
        let (small, large) = if nu.len() <= nv.len() { (nu, nv) } else { (nv, nu) };
        for &w in small.as_slice() {
            if large.contains(w) {
                f(w);
            }
        }
    }

    /// Calls `f(w, id(u,w), id(v,w))` for each common neighbour `w` of
    /// `u` and `v`, returning `(deg u, deg v)`.
    ///
    /// Same probe pattern (and cost) as
    /// [`Adjacency::for_each_common_neighbor`]: the edge IDs ride along
    /// with the slots the intersection touches anyway, so surfacing them
    /// is free — this is the zero-hash path the estimators enumerate
    /// partner edges through. The degrees are a free by-product of the
    /// two vertex lookups the intersection performs regardless; callers
    /// that need them (the state extraction of Eq. 19–22) avoid two
    /// further hash probes.
    #[inline]
    pub fn for_each_common_edge(
        &self,
        u: Vertex,
        v: Vertex,
        mut f: impl FnMut(Vertex, EdgeId, EdgeId),
    ) -> (usize, usize) {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return (self.degree(u), self.degree(v));
        };
        if nu.len() <= nv.len() {
            for (i, &w) in nu.items.iter().enumerate() {
                if let Some(j) = nv.find(w) {
                    f(w, nu.ids[i], nv.ids[j]);
                }
            }
        } else {
            for (i, &w) in nv.items.iter().enumerate() {
                if let Some(j) = nu.find(w) {
                    f(w, nu.ids[j], nv.ids[i]);
                }
            }
        }
        (nu.len(), nv.len())
    }

    /// A reusable handle on `x`'s neighbourhood for repeated probes
    /// against the *same* vertex — e.g. the 4-clique kernels, which test
    /// one common neighbour against every later one. Resolving the
    /// vertex's set once turns O(k) hash probes into one probe plus
    /// O(k) dense membership scans.
    #[inline]
    pub fn neighborhood(&self, x: Vertex) -> Neighborhood<'_> {
        Neighborhood(self.adj.get(&x))
    }

    /// Collects the common neighbours of `u` and `v` into `out` (cleared
    /// first). Using a caller-provided buffer avoids per-event allocation
    /// in the hot enumeration loops.
    pub fn common_neighbors_into(&self, u: Vertex, v: Vertex, out: &mut Vec<Vertex>) {
        out.clear();
        self.for_each_common_neighbor(u, v, |w| out.push(w));
    }

    /// Collects the common neighbours of `u` and `v` with their edge IDs
    /// into `out` (cleared first), returning `(deg u, deg v)`; `eu`/`ev`
    /// follow the `(u, v)` argument order.
    pub fn common_edges_into(
        &self,
        u: Vertex,
        v: Vertex,
        out: &mut Vec<CommonEdge>,
    ) -> (usize, usize) {
        out.clear();
        self.for_each_common_edge(u, v, |w, eu, ev| out.push(CommonEdge { w, eu, ev }))
    }

    /// Number of common neighbours of `u` and `v`.
    pub fn common_neighbor_count(&self, u: Vertex, v: Vertex) -> usize {
        let mut n = 0;
        self.for_each_common_neighbor(u, v, |_| n += 1);
        n
    }

    /// Removes all edges and vertices (and resets the ID arena).
    pub fn clear(&mut self) {
        self.adj.clear();
        self.num_edges = 0;
        self.endpoints.clear();
        self.free.clear();
    }

    /// Debug-only structural invariant check: symmetry, no self-loops,
    /// the edge counter matching the stored sets, index coherence of
    /// spilled neighbourhoods, and arena coherence (ID symmetry, endpoint
    /// agreement, and exact live/free partition of the ID space).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut half_edges = 0usize;
        let mut live_ids = std::collections::BTreeSet::new();
        for (&u, set) in &self.adj {
            assert!(!set.is_empty(), "vertex {u} retained with empty set");
            assert_eq!(set.items.len(), set.ids.len(), "parallel array drift at {u}");
            if let Some(idx) = &set.index {
                assert_eq!(idx.len(), set.items.len(), "index size drift at {u}");
                for (i, &w) in set.items.iter().enumerate() {
                    assert_eq!(
                        idx.get(&w).copied(),
                        Some(i as u32),
                        "index out of sync at {u} slot {i}"
                    );
                }
            }
            for (i, &v) in set.items.iter().enumerate() {
                assert_ne!(u, v, "self-loop stored at {u}");
                let id = set.ids[i];
                let rev = self.adj.get(&v).expect("asymmetric edge");
                let j = rev.find(u).unwrap_or_else(|| panic!("asymmetric edge {u}-{v}"));
                assert_eq!(rev.ids[j], id, "edge ID asymmetry on {u}-{v}");
                assert_eq!(
                    self.endpoints[id as usize],
                    Edge::new(u, v),
                    "arena endpoints out of sync for id {id}"
                );
                if u < v {
                    assert!(live_ids.insert(id), "edge ID {id} stored for two edges");
                }
            }
            half_edges += set.len();
        }
        assert_eq!(half_edges % 2, 0);
        assert_eq!(self.num_edges, half_edges / 2, "edge counter drift");
        let free: std::collections::BTreeSet<_> = self.free.iter().copied().collect();
        assert_eq!(free.len(), self.free.len(), "duplicate IDs on the free list");
        assert!(free.iter().all(|id| (*id as usize) < self.endpoints.len()));
        assert!(live_ids.is_disjoint(&free), "freed ID still live");
        assert_eq!(
            live_ids.len() + free.len(),
            self.endpoints.len(),
            "ID space is not exactly partitioned into live and free"
        );
    }
}

/// A borrowed view of one vertex's neighbourhood, for repeated probes
/// without re-resolving the vertex (see [`Adjacency::neighborhood`]).
#[derive(Copy, Clone)]
pub struct Neighborhood<'a>(Option<&'a NeighborSet>);

impl Neighborhood<'_> {
    /// Degree of the vertex (0 if it has no live edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.map_or(0, NeighborSet::len)
    }

    /// True if the vertex has no live edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `v` is a neighbour.
    #[inline]
    pub fn contains(&self, v: Vertex) -> bool {
        self.0.is_some_and(|s| s.contains(v))
    }

    /// The arena ID of the edge to `v`, if `v` is a neighbour.
    #[inline]
    pub fn id_of(&self, v: Vertex) -> Option<EdgeId> {
        let s = self.0?;
        s.find(v).map(|i| s.ids[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = Adjacency::new();
        let e = Edge::new(1, 2);
        assert!(g.insert(e));
        assert!(!g.insert(e), "duplicate insert must report false");
        assert!(g.contains(e));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 2);
        assert!(g.remove(e));
        assert!(!g.remove(e), "duplicate remove must report false");
        assert!(!g.contains(e));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 0, "isolated vertices must be pruned");
    }

    #[test]
    fn ids_are_minted_and_recycled() {
        let mut g = Adjacency::new();
        let a = g.insert_full(Edge::new(1, 2)).unwrap();
        let b = g.insert_full(Edge::new(2, 3)).unwrap();
        assert_ne!(a, b);
        assert_eq!(g.insert_full(Edge::new(1, 2)), None, "duplicate yields no ID");
        assert_eq!(g.edge_id(Edge::new(1, 2)), Some(a));
        assert_eq!(g.edge_id_between(3, 2), Some(b));
        assert_eq!(g.edge_id_between(2, 2), None);
        assert_eq!(g.edge_endpoints(a), Edge::new(1, 2));
        assert_eq!(g.remove_full(Edge::new(1, 2)), Some(a));
        // LIFO recycling: the freed ID is handed to the next insertion.
        let c = g.insert_full(Edge::new(5, 6)).unwrap();
        assert_eq!(c, a);
        assert_eq!(g.edge_endpoints(c), Edge::new(5, 6));
        assert_eq!(g.id_bound(), 2, "ID space bounded by peak live edges");
        g.check_invariants();
    }

    #[test]
    fn neighbor_entries_are_parallel() {
        let mut g = Adjacency::new();
        let ids: Vec<EdgeId> =
            [2, 3, 4].iter().map(|&v| g.insert_full(Edge::new(1, v)).unwrap()).collect();
        let (vs, es) = g.neighbor_entries(1);
        assert_eq!(vs.len(), 3);
        assert_eq!(es.len(), 3);
        for (i, &v) in vs.iter().enumerate() {
            assert_eq!(g.edge_id(Edge::new(1, v)), Some(es[i]));
            assert!(ids.contains(&es[i]));
        }
        assert_eq!(g.neighbor_entries(99), (&[] as &[Vertex], &[] as &[EdgeId]));
    }

    #[test]
    fn degree_and_neighbors() {
        let mut g = Adjacency::new();
        for v in [2, 3, 4] {
            g.insert(Edge::new(1, v));
        }
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(99), 0);
        let ns: BTreeSet<_> = g.neighbors(1).collect();
        assert_eq!(ns, BTreeSet::from([2, 3, 4]));
        assert_eq!(g.neighbors(99).count(), 0);
        assert_eq!(g.neighbor_slice(99), &[] as &[Vertex]);
        let mut slice: Vec<_> = g.neighbor_slice(1).to_vec();
        slice.sort_unstable();
        assert_eq!(slice, vec![2, 3, 4]);
    }

    #[test]
    fn common_neighbors() {
        // Triangle 1-2-3 plus pendant 4 on 1.
        let mut g = Adjacency::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (1, 4)] {
            g.insert(Edge::new(a, b));
        }
        let mut buf = Vec::new();
        g.common_neighbors_into(1, 2, &mut buf);
        assert_eq!(buf, vec![3]);
        assert_eq!(g.common_neighbor_count(1, 2), 1);
        assert_eq!(g.common_neighbor_count(3, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(2, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(1, 99), 0);
    }

    #[test]
    fn common_edges_carry_correct_ids() {
        let mut g = Adjacency::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (1, 4), (2, 4)] {
            g.insert(Edge::new(a, b));
        }
        let mut buf = Vec::new();
        g.common_edges_into(1, 2, &mut buf);
        assert_eq!(buf.len(), 2); // w ∈ {3, 4}
        for ce in &buf {
            assert_eq!(g.edge_id(Edge::new(1, ce.w)), Some(ce.eu), "eu must be (u,w)");
            assert_eq!(g.edge_id(Edge::new(2, ce.w)), Some(ce.ev), "ev must be (v,w)");
        }
        // Argument order flips the roles.
        let mut flipped = Vec::new();
        g.common_edges_into(2, 1, &mut flipped);
        for ce in &flipped {
            assert_eq!(g.edge_id(Edge::new(2, ce.w)), Some(ce.eu));
            assert_eq!(g.edge_id(Edge::new(1, ce.w)), Some(ce.ev));
        }
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = Adjacency::new();
        let edges = [(1, 2), (2, 3), (1, 3), (4, 5)];
        for (a, b) in edges {
            g.insert(Edge::new(a, b));
        }
        let got: BTreeSet<_> = g.edges().collect();
        let want: BTreeSet<_> = edges.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn adjacent_is_symmetric_and_loop_free() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        assert!(g.adjacent(1, 2));
        assert!(g.adjacent(2, 1));
        assert!(!g.adjacent(1, 1));
        assert!(!g.adjacent(1, 3));
    }

    #[test]
    fn clear_resets() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.id_bound(), 0, "clear must reset the arena");
    }

    #[test]
    fn spill_to_indexed_storage_preserves_semantics() {
        // Grow a hub far past SPILL_THRESHOLD, then churn it.
        let mut g = Adjacency::new();
        let n = (3 * SPILL_THRESHOLD) as Vertex;
        for v in 1..=n {
            assert!(g.insert(Edge::new(0, v)));
        }
        assert_eq!(g.degree(0), n as usize);
        for v in 1..=n {
            assert!(g.adjacent(0, v));
        }
        g.check_invariants();
        // Remove every odd neighbour (exercises indexed swap_remove).
        for v in (1..=n).step_by(2) {
            assert!(g.remove(Edge::new(0, v)));
        }
        g.check_invariants();
        for v in 1..=n {
            assert_eq!(g.adjacent(0, v), v % 2 == 0, "vertex {v}");
        }
        // Re-insert into the spilled set.
        assert!(g.insert(Edge::new(0, 1)));
        assert!(!g.insert(Edge::new(0, 1)));
        g.check_invariants();
        // Spilled sets must still resolve IDs through the index.
        for v in 2..=n {
            if v % 2 == 0 {
                let id = g.edge_id(Edge::new(0, v)).expect("live edge has an ID");
                assert_eq!(g.edge_endpoints(id), Edge::new(0, v));
            }
        }
    }

    /// Reference model: a plain set of canonical edges.
    #[derive(Default)]
    struct Model(BTreeSet<Edge>);

    impl Model {
        fn degree(&self, x: Vertex) -> usize {
            self.0.iter().filter(|e| e.touches(x)).count()
        }
        fn common(&self, u: Vertex, v: Vertex) -> BTreeSet<Vertex> {
            let nbrs = |x: Vertex| -> BTreeSet<Vertex> {
                self.0.iter().filter(|e| e.touches(x)).map(|e| e.other(x)).collect()
            };
            nbrs(u).intersection(&nbrs(v)).copied().collect()
        }
    }

    proptest! {
        /// The adjacency structure agrees with a naive set-of-edges model
        /// under arbitrary interleavings of inserts and removes.
        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..12, 0u64..12), 0..300),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    let was = m.0.remove(&e);
                    prop_assert_eq!(g.remove(e), was);
                }
            }
            g.check_invariants();
            prop_assert_eq!(g.num_edges(), m.0.len());
            let got: BTreeSet<_> = g.edges().collect();
            prop_assert_eq!(&got, &m.0);
            for x in 0u64..12 {
                prop_assert_eq!(g.degree(x), m.degree(x));
            }
            for u in 0u64..12 {
                for v in (u + 1)..12 {
                    let mut buf = Vec::new();
                    g.common_neighbors_into(u, v, &mut buf);
                    let got: BTreeSet<_> = buf.into_iter().collect();
                    prop_assert_eq!(got, m.common(u, v));
                }
            }
        }

        /// The hybrid storage agrees with the model *around the spill
        /// threshold*: a small vertex universe over many ops forces hub
        /// degrees through SPILL_THRESHOLD repeatedly.
        #[test]
        fn prop_spill_boundary_matches_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..26, 0u64..26), 0..600),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    prop_assert_eq!(g.remove(e), m.0.remove(&e));
                }
            }
            g.check_invariants();
            for x in 0u64..26 {
                prop_assert_eq!(g.degree(x), m.degree(x));
                let mut got: Vec<_> = g.neighbor_slice(x).to_vec();
                got.sort_unstable();
                let want: Vec<_> = m
                    .0
                    .iter()
                    .filter(|e| e.touches(x))
                    .map(|e| e.other(x))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }

        /// Edge IDs stay coherent under churn: every live edge resolves
        /// to an ID whose endpoints round-trip, IDs are dense (bounded by
        /// peak live count), and the arena partition invariant holds
        /// after every operation.
        #[test]
        fn prop_arena_ids_coherent_under_churn(
            ops in proptest::collection::vec((any::<bool>(), 0u64..10, 0u64..10), 0..400),
        ) {
            let mut g = Adjacency::new();
            let mut live = 0usize;
            let mut peak = 0usize;
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    if let Some(id) = g.insert_full(e) {
                        live += 1;
                        peak = peak.max(live);
                        prop_assert_eq!(g.edge_endpoints(id), e);
                        prop_assert_eq!(g.edge_id(e), Some(id));
                    }
                } else if let Some(id) = g.remove_full(e) {
                    live -= 1;
                    prop_assert!((id as usize) < g.id_bound());
                    prop_assert_eq!(g.edge_id(e), None);
                }
            }
            g.check_invariants();
            prop_assert!(g.id_bound() <= peak, "ID space exceeded peak live edges");
            for e in g.edges().collect::<Vec<_>>() {
                let id = g.edge_id(e).expect("live edge must have an ID");
                prop_assert_eq!(g.edge_endpoints(id), e);
            }
        }
    }
}
