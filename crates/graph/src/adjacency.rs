//! Dynamic adjacency structure shared by the samplers and the exact
//! counter.
//!
//! The structure supports the three operations every algorithm in the
//! paper performs per event: edge insert, edge delete, and neighbourhood
//! queries (degree, membership, iteration, common-neighbour intersection).
//! The common-neighbour intersection iterates the smaller neighbourhood
//! and probes the larger, i.e. `O(min(deg u, deg v))` — this is the
//! `γ(M)` term in the complexity analysis of Theorems 3/5.
//!
//! # Storage
//!
//! Neighbourhoods are stored as dense `Vec<Vertex>` arrays (cache-local
//! iteration — the enumeration hot path walks these slices millions of
//! times per run) with a lazily attached hash index once a vertex grows
//! past [`SPILL_THRESHOLD`] neighbours, keeping membership probes O(1)
//! for hubs while small neighbourhoods (the overwhelming majority under
//! reservoir budgets) stay a single cache line with branch-predictable
//! linear scans. No query allocates: callers either consume
//! [`Adjacency::neighbor_slice`] directly or reuse a scratch buffer via
//! [`Adjacency::common_neighbors_into`].

use crate::edge::{Edge, Vertex};
use crate::fxhash::FxHashMap;

/// Neighbourhood size beyond which a hash index is attached for O(1)
/// membership probes. Below it, linear scans over the dense array win on
/// real hardware (no hashing, no pointer chase).
pub const SPILL_THRESHOLD: usize = 16;

/// One vertex's neighbourhood: a dense array, plus a position index once
/// the vertex spills past [`SPILL_THRESHOLD`].
#[derive(Clone, Default, Debug)]
struct NeighborSet {
    items: Vec<Vertex>,
    /// vertex → slot in `items`; `Some` once spilled (kept for the rest
    /// of the set's life — churn around the threshold must not thrash).
    index: Option<FxHashMap<Vertex, u32>>,
}

impl NeighborSet {
    #[inline]
    fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    #[inline]
    fn contains(&self, v: Vertex) -> bool {
        match &self.index {
            Some(idx) => idx.contains_key(&v),
            None => self.items.contains(&v),
        }
    }

    /// Returns `true` if `v` was not already present.
    fn insert(&mut self, v: Vertex) -> bool {
        match &mut self.index {
            Some(idx) => {
                if idx.contains_key(&v) {
                    return false;
                }
                idx.insert(v, self.items.len() as u32);
                self.items.push(v);
                true
            }
            None => {
                if self.items.contains(&v) {
                    return false;
                }
                self.items.push(v);
                if self.items.len() > SPILL_THRESHOLD {
                    self.index =
                        Some(self.items.iter().enumerate().map(|(i, &w)| (w, i as u32)).collect());
                }
                true
            }
        }
    }

    /// Returns `true` if `v` was present.
    fn remove(&mut self, v: Vertex) -> bool {
        let pos = match &mut self.index {
            Some(idx) => match idx.remove(&v) {
                Some(p) => p as usize,
                None => return false,
            },
            None => match self.items.iter().position(|&w| w == v) {
                Some(p) => p,
                None => return false,
            },
        };
        self.items.swap_remove(pos);
        if pos < self.items.len() {
            if let Some(idx) = &mut self.index {
                idx.insert(self.items[pos], pos as u32);
            }
        }
        true
    }

    #[inline]
    fn as_slice(&self) -> &[Vertex] {
        &self.items
    }
}

/// A dynamic, undirected, simple-graph adjacency structure.
///
/// Vertices with no incident edges are pruned eagerly so the memory
/// footprint tracks the number of live edges — important for reservoirs
/// whose content churns over millions of events.
#[derive(Clone, Default, Debug)]
pub struct Adjacency {
    adj: FxHashMap<Vertex, NeighborSet>,
    num_edges: usize,
}

impl Adjacency {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for roughly `vertices` vertices.
    pub fn with_capacity(vertices: usize) -> Self {
        Self {
            adj: FxHashMap::with_capacity_and_hasher(vertices, Default::default()),
            num_edges: 0,
        }
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices with at least one incident edge.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Inserts an edge. Returns `true` if the edge was not already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        let newly = self.adj.entry(u).or_default().insert(v);
        if newly {
            self.adj.entry(v).or_default().insert(u);
            self.num_edges += 1;
        }
        newly
    }

    /// Removes an edge. Returns `true` if the edge was present.
    pub fn remove(&mut self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        let removed = match self.adj.get_mut(&u) {
            Some(set) => set.remove(v),
            None => false,
        };
        if removed {
            if self.adj.get(&u).is_some_and(NeighborSet::is_empty) {
                self.adj.remove(&u);
            }
            let set =
                self.adj.get_mut(&v).expect("adjacency symmetry violated: missing reverse entry");
            set.remove(u);
            if set.is_empty() {
                self.adj.remove(&v);
            }
            self.num_edges -= 1;
        }
        removed
    }

    /// True if the edge is present.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// True if `u` and `v` are adjacent (order-insensitive; false for `u == v`).
    #[inline]
    pub fn adjacent(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.adj.get(&u).is_some_and(|s| s.contains(v))
    }

    /// Degree of `x` (0 if unknown).
    #[inline]
    pub fn degree(&self, x: Vertex) -> usize {
        self.adj.get(&x).map_or(0, NeighborSet::len)
    }

    /// The neighbours of `x` as a dense slice (empty if unknown).
    ///
    /// This is the allocation-free view the enumeration hot paths walk;
    /// order is unspecified but deterministic for a given event history.
    #[inline]
    pub fn neighbor_slice(&self, x: Vertex) -> &[Vertex] {
        self.adj.get(&x).map_or(&[], NeighborSet::as_slice)
    }

    /// Iterates the neighbours of `x`.
    pub fn neighbors(&self, x: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.neighbor_slice(x).iter().copied()
    }

    /// Iterates the vertices with at least one incident edge.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates all live edges (each once, in canonical form).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().flat_map(|(&u, set)| {
            set.as_slice().iter().copied().filter(move |&v| u < v).map(move |v| Edge::new(u, v))
        })
    }

    /// Calls `f` for each common neighbour of `u` and `v`.
    ///
    /// Iterates the smaller neighbourhood's dense array and probes the
    /// larger: `O(min(deg u, deg v))` probes, each O(1) once the larger
    /// side has spilled to an indexed set.
    #[inline]
    pub fn for_each_common_neighbor(&self, u: Vertex, v: Vertex, mut f: impl FnMut(Vertex)) {
        let (Some(nu), Some(nv)) = (self.adj.get(&u), self.adj.get(&v)) else {
            return;
        };
        let (small, large) = if nu.len() <= nv.len() { (nu, nv) } else { (nv, nu) };
        for &w in small.as_slice() {
            if large.contains(w) {
                f(w);
            }
        }
    }

    /// Collects the common neighbours of `u` and `v` into `out` (cleared
    /// first). Using a caller-provided buffer avoids per-event allocation
    /// in the hot enumeration loops.
    pub fn common_neighbors_into(&self, u: Vertex, v: Vertex, out: &mut Vec<Vertex>) {
        out.clear();
        self.for_each_common_neighbor(u, v, |w| out.push(w));
    }

    /// Number of common neighbours of `u` and `v`.
    pub fn common_neighbor_count(&self, u: Vertex, v: Vertex) -> usize {
        let mut n = 0;
        self.for_each_common_neighbor(u, v, |_| n += 1);
        n
    }

    /// Removes all edges and vertices.
    pub fn clear(&mut self) {
        self.adj.clear();
        self.num_edges = 0;
    }

    /// Debug-only structural invariant check: symmetry, no self-loops,
    /// the edge counter matching the stored sets, and index coherence of
    /// spilled neighbourhoods.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut half_edges = 0usize;
        for (&u, set) in &self.adj {
            assert!(!set.is_empty(), "vertex {u} retained with empty set");
            if let Some(idx) = &set.index {
                assert_eq!(idx.len(), set.items.len(), "index size drift at {u}");
                for (i, &w) in set.items.iter().enumerate() {
                    assert_eq!(
                        idx.get(&w).copied(),
                        Some(i as u32),
                        "index out of sync at {u} slot {i}"
                    );
                }
            }
            for &v in set.as_slice() {
                assert_ne!(u, v, "self-loop stored at {u}");
                assert!(self.adj.get(&v).is_some_and(|s| s.contains(u)), "asymmetric edge {u}-{v}");
            }
            half_edges += set.len();
        }
        assert_eq!(half_edges % 2, 0);
        assert_eq!(self.num_edges, half_edges / 2, "edge counter drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = Adjacency::new();
        let e = Edge::new(1, 2);
        assert!(g.insert(e));
        assert!(!g.insert(e), "duplicate insert must report false");
        assert!(g.contains(e));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 2);
        assert!(g.remove(e));
        assert!(!g.remove(e), "duplicate remove must report false");
        assert!(!g.contains(e));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 0, "isolated vertices must be pruned");
    }

    #[test]
    fn degree_and_neighbors() {
        let mut g = Adjacency::new();
        for v in [2, 3, 4] {
            g.insert(Edge::new(1, v));
        }
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(99), 0);
        let ns: BTreeSet<_> = g.neighbors(1).collect();
        assert_eq!(ns, BTreeSet::from([2, 3, 4]));
        assert_eq!(g.neighbors(99).count(), 0);
        assert_eq!(g.neighbor_slice(99), &[] as &[Vertex]);
        let mut slice: Vec<_> = g.neighbor_slice(1).to_vec();
        slice.sort_unstable();
        assert_eq!(slice, vec![2, 3, 4]);
    }

    #[test]
    fn common_neighbors() {
        // Triangle 1-2-3 plus pendant 4 on 1.
        let mut g = Adjacency::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (1, 4)] {
            g.insert(Edge::new(a, b));
        }
        let mut buf = Vec::new();
        g.common_neighbors_into(1, 2, &mut buf);
        assert_eq!(buf, vec![3]);
        assert_eq!(g.common_neighbor_count(1, 2), 1);
        assert_eq!(g.common_neighbor_count(3, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(2, 4), 1); // via 1
        assert_eq!(g.common_neighbor_count(1, 99), 0);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = Adjacency::new();
        let edges = [(1, 2), (2, 3), (1, 3), (4, 5)];
        for (a, b) in edges {
            g.insert(Edge::new(a, b));
        }
        let got: BTreeSet<_> = g.edges().collect();
        let want: BTreeSet<_> = edges.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn adjacent_is_symmetric_and_loop_free() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        assert!(g.adjacent(1, 2));
        assert!(g.adjacent(2, 1));
        assert!(!g.adjacent(1, 1));
        assert!(!g.adjacent(1, 3));
    }

    #[test]
    fn clear_resets() {
        let mut g = Adjacency::new();
        g.insert(Edge::new(1, 2));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn spill_to_indexed_storage_preserves_semantics() {
        // Grow a hub far past SPILL_THRESHOLD, then churn it.
        let mut g = Adjacency::new();
        let n = (3 * SPILL_THRESHOLD) as Vertex;
        for v in 1..=n {
            assert!(g.insert(Edge::new(0, v)));
        }
        assert_eq!(g.degree(0), n as usize);
        for v in 1..=n {
            assert!(g.adjacent(0, v));
        }
        g.check_invariants();
        // Remove every odd neighbour (exercises indexed swap_remove).
        for v in (1..=n).step_by(2) {
            assert!(g.remove(Edge::new(0, v)));
        }
        g.check_invariants();
        for v in 1..=n {
            assert_eq!(g.adjacent(0, v), v % 2 == 0, "vertex {v}");
        }
        // Re-insert into the spilled set.
        assert!(g.insert(Edge::new(0, 1)));
        assert!(!g.insert(Edge::new(0, 1)));
        g.check_invariants();
    }

    /// Reference model: a plain set of canonical edges.
    #[derive(Default)]
    struct Model(BTreeSet<Edge>);

    impl Model {
        fn degree(&self, x: Vertex) -> usize {
            self.0.iter().filter(|e| e.touches(x)).count()
        }
        fn common(&self, u: Vertex, v: Vertex) -> BTreeSet<Vertex> {
            let nbrs = |x: Vertex| -> BTreeSet<Vertex> {
                self.0.iter().filter(|e| e.touches(x)).map(|e| e.other(x)).collect()
            };
            nbrs(u).intersection(&nbrs(v)).copied().collect()
        }
    }

    proptest! {
        /// The adjacency structure agrees with a naive set-of-edges model
        /// under arbitrary interleavings of inserts and removes.
        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..12, 0u64..12), 0..300),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    let was = m.0.remove(&e);
                    prop_assert_eq!(g.remove(e), was);
                }
            }
            g.check_invariants();
            prop_assert_eq!(g.num_edges(), m.0.len());
            let got: BTreeSet<_> = g.edges().collect();
            prop_assert_eq!(&got, &m.0);
            for x in 0u64..12 {
                prop_assert_eq!(g.degree(x), m.degree(x));
            }
            for u in 0u64..12 {
                for v in (u + 1)..12 {
                    let mut buf = Vec::new();
                    g.common_neighbors_into(u, v, &mut buf);
                    let got: BTreeSet<_> = buf.into_iter().collect();
                    prop_assert_eq!(got, m.common(u, v));
                }
            }
        }

        /// The hybrid storage agrees with the model *around the spill
        /// threshold*: a small vertex universe over many ops forces hub
        /// degrees through SPILL_THRESHOLD repeatedly.
        #[test]
        fn prop_spill_boundary_matches_model(
            ops in proptest::collection::vec((any::<bool>(), 0u64..26, 0u64..26), 0..600),
        ) {
            let mut g = Adjacency::new();
            let mut m = Model::default();
            for (insert, a, b) in ops {
                let Some(e) = Edge::try_new(a, b) else { continue };
                if insert {
                    prop_assert_eq!(g.insert(e), m.0.insert(e));
                } else {
                    prop_assert_eq!(g.remove(e), m.0.remove(&e));
                }
            }
            g.check_invariants();
            for x in 0u64..26 {
                prop_assert_eq!(g.degree(x), m.degree(x));
                let mut got: Vec<_> = g.neighbor_slice(x).to_vec();
                got.sort_unstable();
                let want: Vec<_> = m
                    .0
                    .iter()
                    .filter(|e| e.touches(x))
                    .map(|e| e.other(x))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
