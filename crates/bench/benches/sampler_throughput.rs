//! Per-event throughput of every sampler — the microbenchmark behind the
//! paper's running-time columns and its "≈3.2 µs per event" claim
//! (§V-B(2)). Each iteration processes a full fully-dynamic stream with
//! a fresh counter.
//!
//! The engine-layer cases measure the two claims of the batched/parallel
//! refactor directly rather than asserting them:
//!
//! * `batched_vs_sequential/*` — the same counter fed per-event vs
//!   through `process_batch` (via `BatchDriver`), for every algorithm.
//! * `ensemble_scaling/*` — 8 independently seeded replicas executed on
//!   1/2/4 worker threads; on multi-core hardware the 4-thread case
//!   should complete the same work in well under ⅔ the 1-thread time
//!   (the >1.5× acceptance bar; a single-core host will show ≈1×).

#![allow(deprecated)] // CounterConfig::build: the legacy single-query shim is benchmarked deliberately

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use wsd_core::engine::{BatchDriver, Ensemble};
use wsd_core::{Algorithm, CounterConfig};
use wsd_graph::Pattern;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::Scenario;

fn stream() -> wsd_stream::EventStream {
    let edges = GeneratorConfig::HolmeKim { vertices: 2_000, edges_per_vertex: 5, triad_prob: 0.5 }
        .generate(7);
    Scenario::default_light().apply(&edges, 3)
}

fn bench_samplers(c: &mut Criterion) {
    let events = stream();
    let capacity = events.len() / 20; // ~5% budget
    let mut group = c.benchmark_group("sampler_throughput/triangle");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    for alg in [
        Algorithm::WsdL,
        Algorithm::WsdH,
        Algorithm::WsdUniform,
        Algorithm::GpsA,
        Algorithm::Triest,
        Algorithm::ThinkD,
        Algorithm::Wrs,
    ] {
        group.bench_function(alg.name(), |b| {
            b.iter_batched(
                || CounterConfig::new(Pattern::Triangle, capacity, 42).build(alg),
                |mut counter| {
                    counter.process_all(&events);
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    // Pattern cost scaling for the paper's headline sampler.
    let mut group = c.benchmark_group("sampler_throughput/wsd_h_patterns");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    for pattern in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique] {
        group.bench_function(pattern.name(), |b| {
            b.iter_batched(
                || CounterConfig::new(pattern, capacity, 42).build(Algorithm::WsdH),
                |mut counter| {
                    counter.process_all(&events);
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_batched_vs_sequential(c: &mut Criterion) {
    let events = stream();
    let capacity = events.len() / 20;
    let mut group = c.benchmark_group("batched_vs_sequential/triangle");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    let driver = BatchDriver::new();
    for alg in
        [Algorithm::WsdH, Algorithm::GpsA, Algorithm::Triest, Algorithm::ThinkD, Algorithm::Wrs]
    {
        group.bench_function(format!("{}/sequential", alg.name()), |b| {
            b.iter_batched(
                || CounterConfig::new(Pattern::Triangle, capacity, 42).build(alg),
                |mut counter| {
                    for &ev in &events {
                        counter.process(ev);
                    }
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_function(format!("{}/batched", alg.name()), |b| {
            b.iter_batched(
                || CounterConfig::new(Pattern::Triangle, capacity, 42).build(alg),
                |mut counter| {
                    driver.run(counter.as_mut(), &events);
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_ensemble_scaling(c: &mut Criterion) {
    let events = stream();
    let capacity = events.len() / 20;
    const REPLICAS: usize = 8;
    let mut group = c.benchmark_group("ensemble_scaling/wsd_h_8_replicas");
    // Total work per iteration: every replica ingests the whole stream.
    group.throughput(Throughput::Elements((events.len() * REPLICAS) as u64));
    group.sample_size(10);
    // Baseline: the pre-engine protocol — repeated runs, one after the
    // other on the caller's thread.
    group.bench_function("sequential_repeats", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for seed in 0..REPLICAS as u64 {
                let mut counter =
                    CounterConfig::new(Pattern::Triangle, capacity, seed).build(Algorithm::WsdH);
                counter.process_all(&events);
                acc += counter.estimate();
            }
            black_box(acc / REPLICAS as f64)
        });
    });
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            let ensemble = Ensemble::new(REPLICAS).with_threads(threads);
            b.iter(|| {
                let report = ensemble.run(&events, |seed| {
                    CounterConfig::new(Pattern::Triangle, capacity, seed).build(Algorithm::WsdH)
                });
                black_box(report.mean)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_batched_vs_sequential, bench_ensemble_scaling);
criterion_main!(benches);
