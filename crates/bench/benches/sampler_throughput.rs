//! Per-event throughput of every sampler — the microbenchmark behind the
//! paper's running-time columns and its "≈3.2 µs per event" claim
//! (§V-B(2)). Each iteration processes a full fully-dynamic stream with
//! a fresh counter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;
use wsd_core::{Algorithm, CounterConfig};
use wsd_graph::Pattern;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::Scenario;

fn stream() -> wsd_stream::EventStream {
    let edges = GeneratorConfig::HolmeKim {
        vertices: 2_000,
        edges_per_vertex: 5,
        triad_prob: 0.5,
    }
    .generate(7);
    Scenario::default_light().apply(&edges, 3)
}

fn bench_samplers(c: &mut Criterion) {
    let events = stream();
    let capacity = events.len() / 20; // ~5% budget
    let mut group = c.benchmark_group("sampler_throughput/triangle");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    for alg in [
        Algorithm::WsdL,
        Algorithm::WsdH,
        Algorithm::WsdUniform,
        Algorithm::GpsA,
        Algorithm::Triest,
        Algorithm::ThinkD,
        Algorithm::Wrs,
    ] {
        group.bench_function(alg.name(), |b| {
            b.iter_batched(
                || CounterConfig::new(Pattern::Triangle, capacity, 42).build(alg),
                |mut counter| {
                    counter.process_all(&events);
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();

    // Pattern cost scaling for the paper's headline sampler.
    let mut group = c.benchmark_group("sampler_throughput/wsd_h_patterns");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    for pattern in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique] {
        group.bench_function(pattern.name(), |b| {
            b.iter_batched(
                || CounterConfig::new(pattern, capacity, 42).build(Algorithm::WsdH),
                |mut counter| {
                    counter.process_all(&events);
                    black_box(counter.estimate())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
