//! Pattern-enumeration kernel benchmarks — the `γ(M)` term of the
//! complexity analysis (Theorems 3/5): cost of counting/enumerating the
//! instances a new edge completes against a sampled graph.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wsd_graph::patterns::EnumScratch;
use wsd_graph::{Adjacency, Edge, Pattern};
use wsd_stream::gen::GeneratorConfig;

fn sampled_graph() -> (Adjacency, Vec<Edge>) {
    // A BA graph: heavy-tailed degrees stress the common-neighbour
    // intersection exactly like a reservoir over a real stream.
    let edges =
        GeneratorConfig::BarabasiAlbert { vertices: 3_000, edges_per_vertex: 6 }.generate(11);
    let mut g = Adjacency::new();
    let (probe, keep) = edges.split_at(edges.len() / 10);
    for e in keep {
        g.insert(*e);
    }
    (g, probe.to_vec())
}

fn bench_patterns(c: &mut Criterion) {
    let (g, probes) = sampled_graph();
    let mut group = c.benchmark_group("patterns/count_completed");
    group.throughput(Throughput::Elements(probes.len() as u64));
    for pattern in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique, Pattern::Clique(5)] {
        group.bench_function(pattern.name(), |b| {
            let mut scratch = EnumScratch::default();
            b.iter(|| {
                let mut total = 0u64;
                for &e in &probes {
                    total += pattern.count_completed(&g, e, &mut scratch);
                }
                black_box(total)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("patterns/enumerate_partners");
    group.throughput(Throughput::Elements(probes.len() as u64));
    for pattern in [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique] {
        group.bench_function(pattern.name(), |b| {
            let mut scratch = EnumScratch::default();
            b.iter(|| {
                let mut total = 0usize;
                for &e in &probes {
                    pattern.for_each_completed(&g, e, &mut scratch, |partners: &[_]| {
                        total += partners.len();
                    });
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
