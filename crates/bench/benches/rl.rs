//! RL-stack benchmarks: policy inference (the extra per-insertion cost
//! of WSD-L over WSD-H observed in the paper's running-time columns) and
//! the DDPG optimisation step (the unit of Table IV/XI training time).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wsd_core::{FeatureNorm, LinearPolicy, StateVector, WeightFn};
use wsd_rl::{Ddpg, DdpgConfig, Transition};

fn bench_rl(c: &mut Criterion) {
    // Policy inference.
    let mut policy = LinearPolicy::new(
        vec![0.3, -0.2, 0.1, 0.05, 0.04, 0.7],
        0.1,
        FeatureNorm::new(vec![5.0; 6], vec![2.0; 6]),
    );
    let states: Vec<StateVector> = (0..1024)
        .map(|i| {
            StateVector::from_values(vec![
                (i % 17) as f64,
                (i % 31) as f64,
                (i % 29) as f64,
                i as f64,
                i as f64 + 1.0,
                i as f64 + 2.0,
            ])
        })
        .collect();
    let mut group = c.benchmark_group("rl/policy_inference");
    group.throughput(Throughput::Elements(states.len() as u64));
    group.bench_function("linear_policy", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in &states {
                acc += policy.weight(s);
            }
            black_box(acc)
        });
    });
    group.finish();

    // DDPG update step (batch of 128, paper hyper-parameters).
    let mut agent = Ddpg::new(6, DdpgConfig::default(), 5);
    let pool: Vec<Transition> = (0..512)
        .map(|i| Transition {
            state: vec![i as f64 % 13.0; 6],
            action: 1.0 + (i % 7) as f64,
            reward: ((i % 11) as f64 - 5.0) / 10.0,
            next_state: vec![(i + 1) as f64 % 13.0; 6],
        })
        .collect();
    for t in &pool {
        agent.norm.update(&t.state);
    }
    let mut group = c.benchmark_group("rl/ddpg");
    group.bench_function("update_batch128", |b| {
        let batch: Vec<&Transition> = pool.iter().take(128).collect();
        b.iter(|| black_box(agent.update(&batch)));
    });
    group.finish();
}

criterion_group!(benches, bench_rl);
criterion_main!(benches);
