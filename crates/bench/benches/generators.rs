//! Stream-generation benchmarks: the synthetic graph models and the
//! fully dynamic scenario builders.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::order::Ordering;
use wsd_stream::Scenario;

const N: u64 = 5_000;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let configs = [
        GeneratorConfig::ErdosRenyi { vertices: N, edges: 4 * N as usize },
        GeneratorConfig::BarabasiAlbert { vertices: N, edges_per_vertex: 4 },
        GeneratorConfig::HolmeKim { vertices: N, edges_per_vertex: 4, triad_prob: 0.5 },
        GeneratorConfig::ForestFire { vertices: N, forward_prob: 0.5 },
        GeneratorConfig::Copying { vertices: N, out_degree: 4, copy_prob: 0.5 },
        GeneratorConfig::Community {
            vertices: N,
            intra_links: 3,
            inter_links: 1,
            new_community_prob: 0.02,
        },
    ];
    for cfg in configs {
        group.bench_function(cfg.model_name(), |b| {
            b.iter(|| black_box(cfg.generate(9)).len());
        });
    }
    group.finish();

    let edges = GeneratorConfig::BarabasiAlbert { vertices: N, edges_per_vertex: 4 }.generate(9);
    let mut group = c.benchmark_group("scenarios");
    group.bench_function("massive", |b| {
        let s = Scenario::default_massive(edges.len());
        b.iter(|| black_box(s.apply(&edges, 5)).len());
    });
    group.bench_function("light", |b| {
        let s = Scenario::default_light();
        b.iter(|| black_box(s.apply(&edges, 5)).len());
    });
    group.finish();

    let mut group = c.benchmark_group("orderings");
    for o in [Ordering::Uar, Ordering::Rbfs] {
        group.bench_function(o.name(), |b| {
            b.iter(|| black_box(o.apply(&edges, 5)).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
