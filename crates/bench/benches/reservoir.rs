//! Reservoir data-structure microbenchmarks: the indexed min-heap behind
//! WSD/GPS (the `log M` in Theorems 3/5) vs the O(1) uniform RP
//! reservoir behind the baselines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use wsd_core::reservoir::{IndexedMinHeap, RpReservoir};
use wsd_graph::Edge;

const OPS: usize = 10_000;
const CAPACITY: usize = 1_000;

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir/indexed_heap");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("push_evict_cycle", |b| {
        b.iter_batched(
            || (IndexedMinHeap::with_capacity(CAPACITY), SmallRng::seed_from_u64(1)),
            |(mut heap, mut rng)| {
                for i in 0..OPS as u32 {
                    let rank: f64 = rng.random_range(0.0..1.0);
                    if heap.len() == CAPACITY {
                        heap.pop_min();
                    }
                    heap.push(i, rank);
                }
                black_box(heap.len())
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("remove_by_key", |b| {
        b.iter_batched(
            || {
                let mut heap = IndexedMinHeap::with_capacity(OPS);
                let mut rng = SmallRng::seed_from_u64(2);
                for i in 0..OPS as u32 {
                    heap.push(i, rng.random_range(0.0..1.0));
                }
                heap
            },
            |mut heap| {
                for i in 0..OPS as u32 {
                    heap.remove(i);
                }
                black_box(heap.len())
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();

    let mut group = c.benchmark_group("reservoir/rp_uniform");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("offer_delete_mix", |b| {
        b.iter_batched(
            || (RpReservoir::new(CAPACITY), SmallRng::seed_from_u64(3)),
            |(mut res, mut rng)| {
                for i in 0..OPS as u64 {
                    res.offer(Edge::new(i, i + 1_000_000), &mut rng);
                    if i % 5 == 4 {
                        res.delete(Edge::new(i - 2, i - 2 + 1_000_000));
                    }
                }
                black_box(res.len())
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_heap);
criterion_main!(benches);
