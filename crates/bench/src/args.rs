//! Minimal CLI argument parsing for the experiment binaries.
//!
//! All experiment binaries share the same flags:
//!
//! ```text
//! --reps N           accuracy repetitions per cell (default 20)
//! --time-reps N      timing repetitions per cell (default 3)
//! --scale F          multiply dataset sizes by F (default 1.0)
//! --seed N           master seed (default 1)
//! --scenario S       massive | light | insert (where applicable)
//! --pattern P        wedge | triangle | 4-clique (where applicable)
//! --csv PATH         additionally write rows as CSV
//! --quick            tiny sizes/reps for smoke-testing
//! --train-iters N    DDPG optimisation steps for WSD-L (default 1000)
//! --no-cache         retrain policies even if cached
//! ```
//!
//! A deliberate ~80-line hand parser: a CLI dependency is not on the
//! allowed list and the needs are trivial.

use std::collections::BTreeMap;
use wsd_graph::Pattern;

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Accuracy repetitions.
    pub reps: usize,
    /// Timing repetitions.
    pub time_reps: usize,
    /// Dataset scale multiplier.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Scenario selector (`massive` default).
    pub scenario: String,
    /// Pattern selector, if the binary supports one.
    pub pattern: Option<Pattern>,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Quick smoke-test mode.
    pub quick: bool,
    /// DDPG iterations for policy training.
    pub train_iters: usize,
    /// Ignore the policy cache.
    pub no_cache: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            reps: 20,
            time_reps: 3,
            scale: 1.0,
            seed: 1,
            scenario: "massive".to_string(),
            pattern: None,
            csv: None,
            quick: false,
            train_iters: 1000,
            no_cache: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, exiting with usage on error.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--reps N] [--time-reps N] [--scale F] [--seed N] \
                     [--scenario massive|light|insert] [--pattern wedge|triangle|4-clique] \
                     [--csv PATH] [--quick] [--train-iters N] [--no-cache]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut kv: BTreeMap<String, String> = BTreeMap::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--no-cache" => out.no_cache = true,
                flag if flag.starts_with("--") => {
                    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                    kv.insert(flag.trim_start_matches("--").to_string(), v);
                }
                other => return Err(format!("unexpected argument {other:?}")),
            }
        }
        for (k, v) in kv {
            match k.as_str() {
                "reps" => out.reps = v.parse().map_err(|e| format!("--reps: {e}"))?,
                "time-reps" => {
                    out.time_reps = v.parse().map_err(|e| format!("--time-reps: {e}"))?
                }
                "scale" => out.scale = v.parse().map_err(|e| format!("--scale: {e}"))?,
                "seed" => out.seed = v.parse().map_err(|e| format!("--seed: {e}"))?,
                "train-iters" => {
                    out.train_iters = v.parse().map_err(|e| format!("--train-iters: {e}"))?
                }
                "scenario" => {
                    if !["massive", "light", "insert"].contains(&v.as_str()) {
                        return Err(format!("unknown scenario {v:?}"));
                    }
                    out.scenario = v;
                }
                "pattern" => {
                    out.pattern = Some(parse_pattern(&v)?);
                }
                "csv" => out.csv = Some(v),
                other => return Err(format!("unknown flag --{other}")),
            }
        }
        if out.quick {
            out.reps = out.reps.min(4);
            out.time_reps = 1;
            out.scale = out.scale.min(0.25);
            out.train_iters = out.train_iters.min(100);
        }
        if out.scale <= 0.0 {
            return Err("--scale must be positive".into());
        }
        if out.reps == 0 {
            return Err("--reps must be positive".into());
        }
        Ok(out)
    }
}

/// Parses a pattern name.
pub fn parse_pattern(s: &str) -> Result<Pattern, String> {
    match s {
        "wedge" => Ok(Pattern::Wedge),
        "triangle" => Ok(Pattern::Triangle),
        "4-clique" | "4clique" | "four-clique" => Ok(Pattern::FourClique),
        other => {
            if let Some(k) = other.strip_suffix("-clique") {
                let k: u8 = k.parse().map_err(|_| format!("unknown pattern {other:?}"))?;
                let p = Pattern::Clique(k);
                p.validate()?;
                return Ok(p);
            }
            Err(format!("unknown pattern {other:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.reps, 20);
        assert_eq!(a.scenario, "massive");
        assert!(!a.quick);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&[
            "--reps",
            "7",
            "--scale",
            "0.5",
            "--scenario",
            "light",
            "--pattern",
            "wedge",
            "--csv",
            "/tmp/x.csv",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(a.reps, 7);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.scenario, "light");
        assert_eq!(a.pattern, Some(Pattern::Wedge));
        assert_eq!(a.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn quick_caps_sizes() {
        let a = parse(&["--quick", "--reps", "100"]).unwrap();
        assert!(a.reps <= 4);
        assert!(a.scale <= 0.25);
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--nope", "1"]).is_err());
        assert!(parse(&["--scenario", "chaotic"]).is_err());
        assert!(parse(&["stray"]).is_err());
        assert!(parse(&["--reps"]).is_err());
    }

    #[test]
    fn pattern_parsing() {
        assert_eq!(parse_pattern("triangle").unwrap(), Pattern::Triangle);
        assert_eq!(parse_pattern("4-clique").unwrap(), Pattern::FourClique);
        assert_eq!(parse_pattern("5-clique").unwrap(), Pattern::Clique(5));
        assert!(parse_pattern("2-clique").is_err());
        assert!(parse_pattern("hexagon").is_err());
    }
}
