//! Fixed-width table rendering (paper-style sections) plus optional CSV
//! export.

use std::fmt::Write as _;

/// A printable table: header row + data rows, with section separators.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Row>,
}

#[derive(Clone, Debug)]
enum Row {
    Section(String),
    Data(Vec<String>),
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Starts a titled section (e.g. "Absolute Relative Error (%)").
    pub fn section(&mut self, title: &str) {
        self.rows.push(Row::Section(title.to_string()));
    }

    /// Adds a data row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(Row::Data(cells));
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            if let Row::Data(cells) = row {
                for (w, c) in widths.iter_mut().zip(cells) {
                    *w = (*w).max(c.len());
                }
            }
        }
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let mut out = String::new();
        let mut line = String::new();
        for (i, (h, w)) in self.header.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{h:<w$}");
        }
        out.push_str(line.trim_end());
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            match row {
                Row::Section(title) => {
                    let _ = writeln!(out, "[ {title} ]");
                }
                Row::Data(cells) => {
                    let mut line = String::new();
                    for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                        if i > 0 {
                            line.push_str("  ");
                        }
                        let _ = write!(line, "{c:<w$}");
                    }
                    let _ = writeln!(out, "{}", line.trim_end());
                }
            }
        }
        out
    }

    /// Renders as CSV (sections become a `section` column).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "section,{}", self.header.join(","));
        let mut section = String::new();
        for row in &self.rows {
            match row {
                Row::Section(t) => section = t.clone(),
                Row::Data(cells) => {
                    let _ = writeln!(out, "{section},{}", cells.join(","));
                }
            }
        }
        out
    }

    /// Prints to stdout and optionally writes CSV to `csv_path`.
    pub fn emit(&self, title: &str, csv_path: Option<&str>) {
        println!("\n=== {title} ===\n{}", self.render());
        if let Some(path) = csv_path {
            if let Err(e) = std::fs::write(path, self.to_csv()) {
                eprintln!("warning: could not write CSV to {path}: {e}");
            } else {
                println!("(CSV written to {path})");
            }
        }
    }
}

/// Formats a fraction as a percentage with three decimals (paper style).
pub fn pct(x: f64) -> String {
    format!("{:.3}", x * 100.0)
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_sections() {
        let mut t = Table::new(&["Graph", "WSD-L", "WSD-H"]);
        t.section("ARE (%)");
        t.row(vec!["cit-PT".into(), "0.075".into(), "0.083".into()]);
        t.section("Time (s)");
        t.row(vec!["cit-PT".into(), "70.4".into(), "66.7".into()]);
        let s = t.render();
        assert!(s.contains("[ ARE (%) ]"));
        assert!(s.contains("cit-PT  0.075  0.083"));
        assert!(s.contains("[ Time (s) ]"));
    }

    #[test]
    fn csv_includes_sections() {
        let mut t = Table::new(&["Graph", "X"]);
        t.section("A");
        t.row(vec!["g".into(), "1".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "section,Graph,X\nA,g,1\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["A", "B"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.00123), "0.123");
        assert_eq!(secs(0.5), "0.500");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(123.4), "123");
    }
}
