//! **Table VII** — counting **4-cliques** under the **massive deletion**
//! scenario (soc-TW omitted, as in the paper).

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "massive".to_string();
    let t = comparison_table(Pattern::FourClique, &args);
    t.emit("Table VII: 4-cliques, massive deletion", args.csv.as_deref());
}
