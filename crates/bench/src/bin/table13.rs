//! **Table XIII** — ablation of the temporal state pooling (Eq. 20):
//! WSD-L (Max, the paper's definition) vs WSD-L (Avg) vs WSD-H, triangle
//! ARE under both deletion scenarios.

use wsd_bench::experiments::ablation_table;
use wsd_bench::Args;

fn main() {
    let args = Args::parse();
    let t = ablation_table(&args);
    t.emit("Table XIII: temporal pooling ablation", args.csv.as_deref());
}
