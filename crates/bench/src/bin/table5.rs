//! **Table V** — transferability of WSD-L under the **massive** deletion
//! scenario: triangle ARE on each test graph for policies trained on
//! every training graph (same-category training should win; cross-
//! category should still beat WSD-H).

use wsd_bench::experiments::transfer_table;
use wsd_bench::Args;

fn main() {
    let mut args = Args::parse();
    args.scenario = "massive".to_string();
    let t = transfer_table(&args);
    t.emit("Table V: WSD-L transferability, massive deletion", args.csv.as_deref());
}
