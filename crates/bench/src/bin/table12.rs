//! **Table XII** — transferability of WSD-L under the **light** deletion
//! scenario.

use wsd_bench::experiments::transfer_table;
use wsd_bench::Args;

fn main() {
    let mut args = Args::parse();
    args.scenario = "light".to_string();
    let t = transfer_table(&args);
    t.emit("Table XII: WSD-L transferability, light deletion", args.csv.as_deref());
}
