//! **Table X** — counting **4-cliques** under the **light deletion**
//! scenario (soc-TW omitted, as in the paper).

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "light".to_string();
    let t = comparison_table(Pattern::FourClique, &args);
    t.emit("Table X: 4-cliques, light deletion", args.csv.as_deref());
}
