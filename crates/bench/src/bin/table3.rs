//! **Table III** — counting **triangles** under the **massive deletion**
//! scenario: ARE / MARE / running time for the six compared algorithms.

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "massive".to_string();
    let t = comparison_table(Pattern::Triangle, &args);
    t.emit("Table III: triangles, massive deletion", args.csv.as_deref());
}
