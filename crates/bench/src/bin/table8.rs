//! **Table VIII** — counting **wedges** under the **light deletion**
//! scenario (βl = 0.2).

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "light".to_string();
    let t = comparison_table(Pattern::Wedge, &args);
    t.emit("Table VIII: wedges, light deletion", args.csv.as_deref());
}
