//! **Figure 1 / Figure 3** — scalability of WSD-L and WSD-H: triangle
//! ARE and running time vs stream size on Forest-Fire streams
//! (`--scenario massive` reproduces Fig. 1, `--scenario light` Fig. 3).
//!
//! The paper sweeps 10 M → 5 B events with M = 1 M; scaled to this
//! environment the sweep is 10 k → 1 M events with M fixed to 1% of the
//! largest stream (the same "constant sample, growing stream" design, so
//! ARE grows with |S| and time is linear in |S|). `--scale` multiplies
//! the sweep sizes.

use wsd_bench::policies::{scenario_by_kind, train_or_load};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::{pct, secs};
use wsd_bench::{Args, Table};
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;
use wsd_stream::gen::GeneratorConfig;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    // Forest-Fire at p = 0.5 yields ≈ 5–8 edges per vertex.
    let base_sizes: &[usize] =
        if args.quick { &[2_000, 10_000] } else { &[10_000, 50_000, 100_000, 500_000, 1_000_000] };
    let sizes: Vec<usize> =
        base_sizes.iter().map(|&s| ((s as f64 * args.scale) as usize).max(1000)).collect();
    let max_edges = *sizes.last().unwrap();
    let capacity = (max_edges / 100).max(50); // 1% of the largest stream
    let policy = train_or_load(
        &by_name("synthetic (train)").expect("registry dataset"),
        args.scale.min(1.0),
        pattern,
        &args.scenario,
        args.train_iters,
        args.seed,
        args.no_cache,
    )
    .policy;
    let mut t = Table::new(&[
        "|S| (edges)",
        "events",
        "WSD-L ARE(%)",
        "WSD-H ARE(%)",
        "WSD-L time(s)",
        "WSD-H time(s)",
        "WSD-L µs/event",
    ]);
    t.section(&format!(
        "Scalability, {} deletion scenario, M = {capacity} (1% of max)",
        args.scenario
    ));
    for &target_edges in &sizes {
        let vertices = (target_edges / 6).max(16) as u64;
        eprintln!("generating FF stream with ~{target_edges} edges…");
        let edges = GeneratorConfig::ForestFire { vertices, forward_prob: 0.5 }
            .generate(args.seed ^ 0xF0F0);
        let scenario = scenario_by_kind(&args.scenario, edges.len());
        let workload = Workload::build(&edges, scenario, pattern, args.seed);
        let reps = args.reps.min(5); // large streams: few reps suffice
        let l = run_cell(
            &AlgoSpec::wsd_l(policy.clone()),
            &workload,
            capacity,
            args.seed,
            reps,
            args.time_reps,
        );
        let h = run_cell(
            &AlgoSpec::new(wsd_core::Algorithm::WsdH),
            &workload,
            capacity,
            args.seed,
            reps,
            args.time_reps,
        );
        let us_per_event = l.seconds * 1e6 / workload.len() as f64;
        t.row(vec![
            format!("{}", edges.len()),
            format!("{}", workload.len()),
            pct(l.are),
            pct(h.are),
            secs(l.seconds),
            secs(h.seconds),
            format!("{us_per_event:.2}"),
        ]);
    }
    t.emit(
        &format!(
            "Figure {}: scalability ({} deletion)",
            if args.scenario == "light" { "3" } else { "1" },
            args.scenario
        ),
        args.csv.as_deref(),
    );
}
