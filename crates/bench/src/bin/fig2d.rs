//! **Figure 2(d) / 4(d)** — the relationship between an edge's learned
//! weight (mean over repetitions of WSD-L) and the number of triangles
//! that contain it by the end of the stream. The paper shows a scatter
//! plot; this binary prints the same relationship bucketed by triangle
//! count, which should be monotone increasing if the policy learned the
//! Eq. (19–21) intuition.

use std::sync::{Arc, Mutex};
use wsd_bench::policies::{capacity_for, scenario_by_kind, train_or_load};
use wsd_bench::runner::Workload;
use wsd_bench::{Args, Table};
use wsd_core::algorithms::WsdCounter;
use wsd_core::{SubgraphCounter, TemporalPooling};
use wsd_graph::{Adjacency, Edge, FxHashMap, Op, Pattern};
use wsd_stream::dataset::by_name;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    let test = by_name("cit-PT").expect("registry dataset");
    let edges = test.edges_scaled(args.scale);
    let scenario = scenario_by_kind(&args.scenario, edges.len());
    let workload = Workload::build(&edges, scenario, pattern, args.seed);
    let capacity = capacity_for(edges.len(), pattern);
    let policy = train_or_load(
        &by_name("cit-HE").expect("registry dataset"),
        args.scale,
        pattern,
        &args.scenario,
        args.train_iters,
        args.seed,
        args.no_cache,
    )
    .policy;
    // Mean weight per edge across repetitions of WSD-L.
    let acc: Arc<Mutex<FxHashMap<Edge, (f64, u64)>>> = Arc::new(Mutex::new(FxHashMap::default()));
    for rep in 0..args.reps as u64 {
        eprintln!("weight-collection rep {rep}…");
        let mut counter = WsdCounter::new(
            pattern,
            capacity,
            Box::new(policy.clone()),
            TemporalPooling::Max,
            args.seed + rep,
        );
        let acc2 = acc.clone();
        counter.set_observer(Box::new(move |e, _state, w| {
            let mut m = acc2.lock().unwrap();
            let entry = m.entry(e).or_insert((0.0, 0));
            entry.0 += w;
            entry.1 += 1;
        }));
        counter.process_all(&workload.stream);
    }
    // Triangles containing each edge in the final graph.
    let mut final_graph = Adjacency::new();
    for ev in workload.stream.iter() {
        match ev.op {
            Op::Insert => final_graph.insert(ev.edge),
            Op::Delete => final_graph.remove(ev.edge),
        };
    }
    // Bucket edges by their final triangle count; report the mean weight
    // per bucket (log-ish buckets, as scatter density in the paper).
    let buckets: &[(u64, u64)] =
        &[(0, 0), (1, 1), (2, 3), (4, 7), (8, 15), (16, 31), (32, 63), (64, u64::MAX)];
    let mut sums = vec![(0.0f64, 0u64); buckets.len()];
    let acc = acc.lock().unwrap();
    for e in final_graph.edges() {
        let Some(&(wsum, n)) = acc.get(&e) else { continue };
        let mean_w = wsum / n as f64;
        let tri = final_graph.common_neighbor_count(e.u(), e.v()) as u64;
        let b = buckets.iter().position(|&(lo, hi)| tri >= lo && tri <= hi).unwrap();
        sums[b].0 += mean_w;
        sums[b].1 += 1;
    }
    let mut t = Table::new(&["#triangles containing edge", "edges", "mean learned weight"]);
    t.section(&format!("cit-PT, {} deletion scenario, {} reps of WSD-L", args.scenario, args.reps));
    for ((lo, hi), (wsum, n)) in buckets.iter().zip(&sums) {
        if *n == 0 {
            continue;
        }
        let label = if *hi == u64::MAX {
            format!("{lo}+")
        } else if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}–{hi}")
        };
        t.row(vec![label, format!("{n}"), format!("{:.3}", wsum / *n as f64)]);
    }
    t.emit(
        &format!(
            "Figure {}: weight vs triangle count ({} deletion)",
            if args.scenario == "light" { "4(d)" } else { "2(d)" },
            args.scenario
        ),
        args.csv.as_deref(),
    );
}
