//! Workload diagnostics: stream composition, exact-count trajectory and
//! conditioning of the evaluation endpoint for every registry dataset
//! under the selected scenario — the tool to consult when an experiment
//! looks noisy.

use wsd_bench::policies::{capacity_for, scenario_by_kind};
use wsd_bench::runner::Workload;
use wsd_bench::{Args, Table};
use wsd_graph::{Op, Pattern};
use wsd_stream::dataset::registry;

fn main() {
    let args = Args::parse();
    let pattern = args.pattern.unwrap_or(Pattern::Triangle);
    let mut t = Table::new(&[
        "Graph",
        "|E|",
        "events",
        "dels",
        "peak truth",
        "final truth",
        "final/peak",
        "M",
    ]);
    t.section(&format!(
        "{} under {} deletion (after endpoint truncation)",
        pattern.name(),
        args.scenario
    ));
    for pair in registry() {
        let edges = pair.test.edges_scaled(args.scale);
        let scenario = scenario_by_kind(&args.scenario, edges.len());
        let w = Workload::build(&edges, scenario, pattern, args.seed);
        let dels = w.stream.iter().filter(|e| e.op == Op::Delete).count();
        let peak = w.truth.iter().copied().fold(0.0f64, f64::max);
        t.row(vec![
            pair.test.name.to_string(),
            format!("{}", edges.len()),
            format!("{}", w.len()),
            format!("{dels}"),
            format!("{peak:.0}"),
            format!("{:.0}", w.final_truth()),
            format!("{:.3}", w.final_truth() / peak),
            format!("{}", capacity_for(edges.len(), pattern)),
        ]);
    }
    t.emit("Workload probe", args.csv.as_deref());
}
