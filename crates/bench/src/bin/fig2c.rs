//! **Figure 2(c) / 4(c)** — training-graph size vs training time and
//! resulting accuracy: Forest-Fire training graphs scaled ×{0.5, 1, 2,
//! 4, 8}, each policy evaluated (triangle ARE) on the larger synthetic
//! test graph (`--scenario massive` → Fig. 2(c), `light` → Fig. 4(c)).

use wsd_bench::policies::{capacity_for, scenario_by_kind, train_or_load};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::{pct, secs};
use wsd_bench::{Args, Table};
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    let train_spec = by_name("synthetic (train)").expect("registry dataset");
    let test_spec = by_name("synthetic").expect("registry dataset");
    let test_edges = test_spec.edges_scaled(args.scale);
    let scenario = scenario_by_kind(&args.scenario, test_edges.len());
    let workload = Workload::build(&test_edges, scenario, pattern, args.seed);
    let capacity = capacity_for(test_edges.len(), pattern);
    let mut t = Table::new(&["train ×", "train |E|", "train time (s)", "test ARE (%)"]);
    t.section(&format!(
        "FF training-size sweep, {} deletion scenario (test |E| = {})",
        args.scenario,
        test_edges.len()
    ));
    let factors: &[f64] = if args.quick { &[0.5, 1.0] } else { &[0.5, 1.0, 2.0, 4.0, 8.0] };
    for &factor in factors {
        let scale = args.scale * factor;
        eprintln!("training at ×{factor}…");
        let outcome = train_or_load(
            &train_spec,
            scale,
            pattern,
            &args.scenario,
            args.train_iters,
            args.seed,
            true, // always retrain: we are measuring training time
        );
        let train_edges = train_spec.edges_scaled(scale).len();
        let cell = run_cell(
            &AlgoSpec::wsd_l(outcome.policy),
            &workload,
            capacity,
            args.seed,
            args.reps,
            0,
        );
        t.row(vec![
            format!("{factor}"),
            format!("{train_edges}"),
            secs(outcome.train_time.expect("forced training").as_secs_f64()),
            pct(cell.are),
        ]);
    }
    t.emit(
        &format!(
            "Figure {}: training-size sweep ({} deletion)",
            if args.scenario == "light" { "4(c)" } else { "2(c)" },
            args.scenario
        ),
        args.csv.as_deref(),
    );
}
