//! **Figure 2(b) / 4(b)** — impact of the reservoir budget: triangle ARE
//! on cit-PT for M = 1%…5% of |E|, all six algorithms
//! (`--scenario massive` → Fig. 2(b), `light` → Fig. 4(b)).

use wsd_bench::policies::{scenario_by_kind, train_or_load};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::pct;
use wsd_bench::{Args, Table};
use wsd_core::Algorithm;
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    let test = by_name("cit-PT").expect("registry dataset");
    let edges = test.edges_scaled(args.scale);
    let scenario = scenario_by_kind(&args.scenario, edges.len());
    let workload = Workload::build(&edges, scenario, pattern, args.seed);
    let policy = train_or_load(
        &by_name("cit-HE").expect("registry dataset"),
        args.scale,
        pattern,
        &args.scenario,
        args.train_iters,
        args.seed,
        args.no_cache,
    )
    .policy;
    let mut header = vec!["M (%|E|)".to_string()];
    header.extend(Algorithm::paper_table_set().iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    t.section(&format!(
        "cit-PT triangle ARE (%), {} deletion scenario, |E| = {}",
        args.scenario,
        edges.len()
    ));
    for pct_m in 1..=5usize {
        let capacity = (edges.len() * pct_m / 100).max(pattern.num_edges() + 20);
        eprintln!("M = {pct_m}% = {capacity}…");
        let mut row = vec![format!("{pct_m}")];
        for alg in Algorithm::paper_table_set() {
            let spec = match alg {
                Algorithm::WsdL => AlgoSpec::wsd_l(policy.clone()),
                other => AlgoSpec::new(other),
            };
            let cell = run_cell(&spec, &workload, capacity, args.seed, args.reps, 0);
            row.push(pct(cell.are));
        }
        t.row(row);
    }
    t.emit(
        &format!(
            "Figure {}: reservoir size sweep ({} deletion)",
            if args.scenario == "light" { "4(b)" } else { "2(b)" },
            args.scenario
        ),
        args.csv.as_deref(),
    );
}
