//! **Table IV** — WSD-L training time for triangles (△) and wedges (∧)
//! on the four real training graphs under the **massive** deletion
//! scenario (the paper reports hours at its 10⁶× larger scale; the
//! comparable signal here is the dataset/pattern ratio structure).

use wsd_bench::experiments::training_time_table;
use wsd_bench::Args;

fn main() {
    let mut args = Args::parse();
    args.scenario = "massive".to_string();
    let t = training_time_table(&args);
    t.emit("Table IV: training time, massive deletion", args.csv.as_deref());
}
