//! **Figure 5** — effect of the deletion intensity: triangle ARE on
//! cit-PT while sweeping βm ∈ {0, 0.2, …, 0.8} (massive) and
//! βl ∈ {0, 0.2, …, 0.8} (light), for all six algorithms. The WSD-L
//! policy is retrained per parameter value, as in the paper.

use wsd_bench::policies::{capacity_for, train_custom};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::pct;
use wsd_bench::{Args, Table};
use wsd_core::{Algorithm, TemporalPooling};
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;
use wsd_stream::Scenario;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    let test = by_name("cit-PT").expect("registry dataset");
    let train = by_name("cit-HE").expect("registry dataset");
    let edges = test.edges_scaled(args.scale);
    let capacity = capacity_for(edges.len(), pattern);
    let betas: &[f64] = if args.quick { &[0.0, 0.8] } else { &[0.0, 0.2, 0.4, 0.6, 0.8] };
    let mut header = vec!["β".to_string()];
    header.extend(Algorithm::paper_table_set().iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for (section, kind) in [("βm (massive deletion)", "massive"), ("βl (light deletion)", "light")]
    {
        t.section(&format!("cit-PT triangle ARE (%), varying {section}"));
        for &beta in betas {
            eprintln!("{kind} β = {beta}…");
            let scenario = match kind {
                "massive" => Scenario::Massive { alpha: 5.0 / edges.len() as f64, beta_m: beta },
                _ => Scenario::Light { beta_l: beta },
            };
            let workload = Workload::build(&edges, scenario, pattern, args.seed);
            // Retrain per parameter value (paper §V-B(9)), with the swept
            // β applied to the training streams too.
            let train_edges = train.edges_scaled(args.scale).len();
            let train_scenario = match kind {
                "massive" => Scenario::Massive { alpha: 5.0 / train_edges as f64, beta_m: beta },
                _ => Scenario::Light { beta_l: beta },
            };
            let policy = train_custom(
                &train,
                args.scale,
                pattern,
                train_scenario,
                &format!("{kind}-beta{beta:.1}"),
                args.train_iters,
                args.seed,
                args.no_cache,
                TemporalPooling::Max,
            )
            .policy;
            let mut row = vec![format!("{beta:.1}")];
            for alg in Algorithm::paper_table_set() {
                let spec = match alg {
                    Algorithm::WsdL => AlgoSpec::wsd_l(policy.clone()),
                    other => AlgoSpec::new(other),
                };
                let cell = run_cell(&spec, &workload, capacity, args.seed, args.reps, 0);
                row.push(pct(cell.are));
            }
            t.row(row);
        }
    }
    t.emit("Figure 5: deletion-intensity sweep", args.csv.as_deref());
}
