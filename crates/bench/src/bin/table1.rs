//! **Table I** — dataset statistics: the train/test registry standing in
//! for the paper's eight real graphs (DESIGN.md §4 documents the
//! substitution).

use wsd_bench::{Args, Table};
use wsd_graph::Adjacency;
use wsd_stream::dataset::registry;

fn main() {
    let args = Args::parse();
    let mut t = Table::new(&["Category", "Graph (Train)", "|E|", "Graph (Test)", "|E| ", "Model"]);
    t.section(&format!("Dataset registry (scale ×{})", args.scale));
    for pair in registry() {
        let e_train = pair.train.edges_scaled(args.scale).len();
        let e_test = pair.test.edges_scaled(args.scale).len();
        t.row(vec![
            pair.category.name().to_string(),
            pair.train.name.to_string(),
            format!("{e_train}"),
            pair.test.name.to_string(),
            format!("{e_test}"),
            pair.test.config.model_name().to_string(),
        ]);
    }
    t.section("Test-graph structure");
    for pair in registry() {
        let edges = pair.test.edges_scaled(args.scale);
        let mut g = Adjacency::new();
        for e in &edges {
            g.insert(*e);
        }
        let tri = wsd_graph::exact::count_static(wsd_graph::Pattern::Triangle, &g);
        let wedge = wsd_graph::exact::count_static(wsd_graph::Pattern::Wedge, &g);
        t.row(vec![
            pair.category.name().to_string(),
            "—".into(),
            format!("V={} ", g.num_vertices()),
            pair.test.name.to_string(),
            format!("tri={tri}"),
            format!("wedge={wedge}"),
        ]);
    }
    t.emit("Table I: dataset statistics", args.csv.as_deref());
}
