//! **Figure 2(a) / 4(a)** — impact of the stream ordering: triangle ARE
//! on cit-PT under Natural / UAR / RBFS orderings for all six
//! algorithms (`--scenario massive` → Fig. 2(a), `light` → Fig. 4(a)).

use wsd_bench::policies::{capacity_for, scenario_by_kind, train_or_load};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::pct;
use wsd_bench::{Args, Table};
use wsd_core::Algorithm;
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;
use wsd_stream::order::Ordering;

fn main() {
    let args = Args::parse();
    let pattern = Pattern::Triangle;
    let test = by_name("cit-PT").expect("registry dataset");
    let edges = test.edges_scaled(args.scale);
    let capacity = capacity_for(edges.len(), pattern);
    let policy = train_or_load(
        &by_name("cit-HE").expect("registry dataset"),
        args.scale,
        pattern,
        &args.scenario,
        args.train_iters,
        args.seed,
        args.no_cache,
    )
    .policy;
    let mut header = vec!["Ordering".to_string()];
    header.extend(Algorithm::paper_table_set().iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    t.section(&format!("cit-PT triangle ARE (%), {} deletion scenario", args.scenario));
    for ordering in Ordering::all() {
        eprintln!("ordering {}…", ordering.name());
        let reordered = ordering.apply(&edges, args.seed ^ 0x0BD);
        let scenario = scenario_by_kind(&args.scenario, reordered.len());
        let workload = Workload::build(&reordered, scenario, pattern, args.seed);
        let mut row = vec![ordering.name().to_string()];
        for alg in Algorithm::paper_table_set() {
            let spec = match alg {
                Algorithm::WsdL => AlgoSpec::wsd_l(policy.clone()),
                other => AlgoSpec::new(other),
            };
            let cell = run_cell(&spec, &workload, capacity, args.seed, args.reps, 0);
            row.push(pct(cell.are));
        }
        t.row(row);
    }
    t.emit(
        &format!(
            "Figure {}: stream ordering ({} deletion)",
            if args.scenario == "light" { "4(a)" } else { "2(a)" },
            args.scenario
        ),
        args.csv.as_deref(),
    );
}
