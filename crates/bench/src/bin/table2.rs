//! **Table II** — counting **wedges** under the **massive deletion**
//! scenario: ARE / MARE / running time for WSD-L, WSD-H, GPS-A, Triest,
//! ThinkD and WRS on every test dataset.

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "massive".to_string();
    let t = comparison_table(Pattern::Wedge, &args);
    t.emit("Table II: wedges, massive deletion", args.csv.as_deref());
}
