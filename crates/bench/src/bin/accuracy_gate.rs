//! `accuracy_gate` — CI gate on estimator accuracy.
//!
//! Runs a small fixed-seed ensemble of every deletion-capable sampler —
//! the weighted ones (WSD-H, WSD-U, GPS-A) *and* the uniform baselines
//! (Triest, ThinkD, WRS) — over two deterministic streams and asserts
//! that the triangle / 4-clique relative error of the ensemble mean
//! stays under a pinned bound. Everything is seeded and the ensemble merge is
//! thread-count-invariant, so the computed errors are exact constants of
//! the codebase: the gate is deterministic (never flaky) and catches
//! estimator breakage — a wrong inclusion probability, a dropped
//! instance class, a broken intersection kernel — that the throughput
//! smoke and even the bit-identity goldens can miss once goldens are
//! deliberately regenerated.
//!
//! On top of the standalone (single-query) cells, the weighted samplers
//! are gated as **3-pattern sessions** — one shared triangle-weighted
//! sampler answering wedge/triangle/4-clique at once — so the
//! shared-sample estimates of the session API are accuracy-gated, not
//! just benchmarked. The triangle query of such a session is
//! bit-identical to the standalone counter (the weight pass fuses with
//! it); the wedge and 4-clique queries ride a triangle-weighted sample
//! and carry their own pinned bounds.
//!
//! Bounds are pinned ≈2× above the currently observed error so that
//! ordinary variance drift under intentional estimator changes passes,
//! while order-of-magnitude breakage fails. Exits non-zero listing every
//! violated cell. Observed errors (and therefore the pinned bounds)
//! were regenerated once in PR 5 when ensemble replica seeds moved from
//! additive to splitmix derivation.

use wsd_bench::policies::policy_cache_dir;
use wsd_core::engine::Ensemble;
use wsd_core::{Algorithm, PolicyRegistry, SessionBuilder};
use wsd_graph::{ExactCounter, Pattern};
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::{EventStream, Scenario};

const REPLICAS: usize = 8;
const BASE_SEED: u64 = 1000;

struct Gate {
    stream: &'static str,
    algorithm: Algorithm,
    pattern: Pattern,
    /// Maximum tolerated `|mean - truth| / truth`.
    bound: f64,
}

/// The standalone (single-query) gated cells. Bounds pinned ≈2–3×
/// above the observed fixed-seed errors (see the table `accuracy_gate`
/// prints; WSD-U 4-clique — the uniform-weight control — carries the
/// widest band, matching its by-design variance, and the uniform
/// baselines carry wider bands than the weighted samplers for the same
/// reason). 4-cliques are gated on the hub stream only: the BA stream's
/// exact 4-clique count is a double-digit number at this scale, so its
/// relative error at a 20% budget is variance, not signal.
#[rustfmt::skip]
const GATES: &[Gate] = &[
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::Triest,     pattern: Pattern::Triangle,   bound: 0.08 },
    Gate { stream: "ba-light",  algorithm: Algorithm::ThinkD,     pattern: Pattern::Triangle,   bound: 0.05 },
    Gate { stream: "ba-light",  algorithm: Algorithm::Wrs,        pattern: Pattern::Triangle,   bound: 0.05 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.12 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.20 },
    Gate { stream: "hub-light", algorithm: Algorithm::Triest,     pattern: Pattern::Triangle,   bound: 0.12 },
    Gate { stream: "hub-light", algorithm: Algorithm::ThinkD,     pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "hub-light", algorithm: Algorithm::Wrs,        pattern: Pattern::Triangle,   bound: 0.15 },
    // Re-pinned in PR 5 (splitmix replica seeds): observed 0.2135.
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::FourClique, bound: 0.45 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::FourClique, bound: 0.50 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::FourClique, bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::Triest,     pattern: Pattern::FourClique, bound: 0.60 },
    Gate { stream: "hub-light", algorithm: Algorithm::ThinkD,     pattern: Pattern::FourClique, bound: 0.25 },
    Gate { stream: "hub-light", algorithm: Algorithm::Wrs,        pattern: Pattern::FourClique, bound: 0.90 },
];

/// The 3-pattern-session cells: wedge/triangle/4-clique answered by one
/// triangle-weighted sampler per weighted algorithm. Triangle bounds
/// match the standalone cells exactly (the estimates are bit-identical
/// — asserted below, not just bounded); wedge and 4-clique ride the
/// shared triangle-weighted sample.
#[rustfmt::skip]
const SESSION_GATES: &[Gate] = &[
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdH,       pattern: Pattern::Wedge,      bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdUniform, pattern: Pattern::Wedge,      bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::GpsA,       pattern: Pattern::Wedge,      bound: 0.10 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.12 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.20 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::FourClique, bound: 0.30 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::FourClique, bound: 0.50 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::FourClique, bound: 0.30 },
];

const SESSION_PATTERNS: [Pattern; 3] = [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique];

/// The learned-weight claim, CI-enforced: on these (stream, pattern)
/// cells the checked-in `wsd-train` grid artifact's WSD-L observed
/// error must not exceed WSD-H's at the same reservoir capacity and
/// ensemble seeds. Cells are pinned where the shipped artifacts win;
/// everything is fixed-seed, so a regression here means the policy
/// pipeline (trainer, artifact codec, registry, WSD-L serving) changed
/// behaviour — exactly what this gate exists to catch. The remaining
/// trained cells still print their margins below for visibility.
const LEARNED_GATES: &[(&str, Pattern)] = &[
    ("ba-light", Pattern::Wedge),
    ("ba-light", Pattern::Triangle),
    ("hub-light", Pattern::Wedge),
    ("hub-light", Pattern::Triangle),
    ("hub-light", Pattern::FourClique),
];

fn streams() -> Vec<(&'static str, EventStream)> {
    let ba = GeneratorConfig::BarabasiAlbert { vertices: 1200, edges_per_vertex: 5 }.generate(7);
    let hub = GeneratorConfig::HubClique { clique: 32, spokes: 1500 }.generate(17);
    vec![
        ("ba-light", Scenario::default_light().apply(&ba, 3)),
        ("hub-light", Scenario::default_light().apply(&hub, 8)),
    ]
}

fn main() {
    let mut failures = Vec::new();
    for (name, events) in streams() {
        let capacity = events.len() / 5;
        let truth_of = |pattern| {
            ExactCounter::count_stream(pattern, events.iter().copied())
                .expect("generated streams are feasible") as f64
        };
        let truths = [
            (Pattern::Wedge, truth_of(Pattern::Wedge)),
            (Pattern::Triangle, truth_of(Pattern::Triangle)),
            (Pattern::FourClique, truth_of(Pattern::FourClique)),
        ];
        let truth_for = |pattern: Pattern| {
            let t = truths.iter().find(|(p, _)| *p == pattern).expect("truth").1;
            assert!(t > 0.0, "{name}: ground truth for {} is 0", pattern.name());
            t
        };
        eprintln!(
            "accuracy_gate: {name} ({} events, M={capacity}, truths: wedge={}, tri={}, 4c={})",
            events.len(),
            truths[0].1,
            truths[1].1,
            truths[2].1
        );
        // Standalone cells: single-query sessions (≡ legacy counters).
        // The weighted triangle estimates are kept for the session
        // cells' fused-query bit-equality assert — same alg, stream,
        // capacity and seeds, so rerunning them would be pure waste.
        let mut standalone_triangles: std::collections::HashMap<Algorithm, Vec<f64>> =
            Default::default();
        for gate in GATES.iter().filter(|g| g.stream == name) {
            let truth = truth_for(gate.pattern);
            let report =
                Ensemble::new(REPLICAS).with_base_seed(BASE_SEED).run_sessions(&events, |seed| {
                    SessionBuilder::new(gate.algorithm, capacity, seed).query(gate.pattern).build()
                });
            if gate.pattern == Pattern::Triangle {
                standalone_triangles.insert(gate.algorithm, report.queries[0].1.estimates.clone());
            }
            let mean = report.queries[0].1.mean;
            let err = (mean - truth).abs() / truth;
            let verdict = if err <= gate.bound { "ok" } else { "FAIL" };
            eprintln!(
                "  {:>6} x {:<9} rel-err {:>7.4} (bound {:.2}) {}",
                gate.algorithm.name(),
                gate.pattern.name(),
                err,
                gate.bound,
                verdict
            );
            if err > gate.bound {
                failures.push(format!(
                    "{name}: {} on {}: relative error {err:.4} exceeds bound {:.2}",
                    gate.algorithm.name(),
                    gate.pattern.name(),
                    gate.bound
                ));
            }
        }
        // Session cells: one triangle-weighted sampler per algorithm
        // answering the whole pattern grid.
        for alg in [Algorithm::WsdH, Algorithm::WsdUniform, Algorithm::GpsA] {
            let report =
                Ensemble::new(REPLICAS).with_base_seed(BASE_SEED).run_sessions(&events, |seed| {
                    SessionBuilder::new(alg, capacity, seed)
                        .queries(SESSION_PATTERNS)
                        .with_weight_pattern(Pattern::Triangle)
                        .build()
                });
            // The fused triangle query must be bit-identical to the
            // standalone triangle counter — a free equivalence check on
            // the real evaluation workload (estimates captured from the
            // standalone GATES cells above).
            let standalone =
                standalone_triangles.get(&alg).expect("triangle gate ran for every weighted alg");
            let fused = report.for_pattern(Pattern::Triangle).expect("triangle query");
            assert_eq!(
                &fused.estimates,
                standalone,
                "{name}: {} session triangle query diverged from the standalone counter",
                alg.name()
            );
            for gate in SESSION_GATES.iter().filter(|g| g.stream == name && g.algorithm == alg) {
                let truth = truth_for(gate.pattern);
                let mean = report.for_pattern(gate.pattern).expect("gated query").mean;
                let err = (mean - truth).abs() / truth;
                let verdict = if err <= gate.bound { "ok" } else { "FAIL" };
                eprintln!(
                    "  {:>6} x {:<9} rel-err {:>7.4} (bound {:.2}) {} [3-pattern session]",
                    alg.name(),
                    gate.pattern.name(),
                    err,
                    gate.bound,
                    verdict
                );
                if err > gate.bound {
                    failures.push(format!(
                        "{name}: {} session query {}: relative error {err:.4} exceeds bound {:.2}",
                        alg.name(),
                        gate.pattern.name(),
                        gate.bound
                    ));
                }
            }
        }
        // Learned cells: every registry artifact trained for this
        // stream's scenario family, WSD-L vs WSD-H at equal capacity
        // and seeds. Enforced on the LEARNED_GATES cells.
        let registry = PolicyRegistry::open(policy_cache_dir()).expect("registry dir scans");
        for artifact in registry.iter().filter(|a| a.meta.scenario == name) {
            let pattern = artifact.meta.pattern;
            let truth = truth_for(pattern);
            let err_of = |report: wsd_core::engine::SessionEnsembleReport| {
                (report.queries[0].1.mean - truth).abs() / truth
            };
            let learned = err_of(Ensemble::new(REPLICAS).with_base_seed(BASE_SEED).run_sessions(
                &events,
                |seed| {
                    SessionBuilder::new(Algorithm::WsdL, capacity, seed)
                        .query(pattern)
                        .with_policy(artifact.policy.clone())
                        .build()
                },
            ));
            let heuristic = err_of(
                Ensemble::new(REPLICAS).with_base_seed(BASE_SEED).run_sessions(&events, |seed| {
                    SessionBuilder::new(Algorithm::WsdH, capacity, seed).query(pattern).build()
                }),
            );
            let enforced = LEARNED_GATES.contains(&(name, pattern));
            let won = learned <= heuristic;
            let verdict = match (enforced, won) {
                (true, true) => "ok",
                (true, false) => "FAIL",
                (false, _) => "info",
            };
            eprintln!(
                "  WSD-L x {:<9} rel-err {:>7.4} vs WSD-H {:>7.4} {} [learned, {}]",
                pattern.name(),
                learned,
                heuristic,
                verdict,
                if enforced { "enforced" } else { "unenforced" },
            );
            if enforced && !won {
                failures.push(format!(
                    "{name}: learned policy on {}: WSD-L error {learned:.4} exceeds \
                     WSD-H error {heuristic:.4} at equal capacity",
                    pattern.name(),
                ));
            }
        }
        // The claim needs its artifacts: a missing or unreadable .wsdp
        // must fail the gate, not silently skip the cell.
        for &(stream, pattern) in LEARNED_GATES.iter().filter(|(s, _)| *s == name) {
            if registry.lookup(pattern, stream).is_none() {
                failures.push(format!(
                    "{name}: no registry artifact for enforced learned cell ({stream}, {})",
                    pattern.name(),
                ));
            }
        }
    }
    if failures.is_empty() {
        eprintln!("accuracy_gate: all {} cells within bounds", GATES.len() + SESSION_GATES.len());
    } else {
        eprintln!("accuracy_gate: {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
