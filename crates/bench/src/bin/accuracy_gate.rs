//! `accuracy_gate` — CI gate on estimator accuracy.
//!
//! Runs a small fixed-seed ensemble of every deletion-capable sampler —
//! the weighted ones (WSD-H, WSD-U, GPS-A) *and* the uniform baselines
//! (Triest, ThinkD, WRS) — over two deterministic streams and asserts
//! that the triangle / 4-clique relative error of the ensemble mean
//! stays under a pinned bound. Everything is seeded and the ensemble merge is
//! thread-count-invariant, so the computed errors are exact constants of
//! the codebase: the gate is deterministic (never flaky) and catches
//! estimator breakage — a wrong inclusion probability, a dropped
//! instance class, a broken intersection kernel — that the throughput
//! smoke and even the bit-identity goldens can miss once goldens are
//! deliberately regenerated.
//!
//! Bounds are pinned ≈2× above the currently observed error so that
//! ordinary variance drift under intentional estimator changes passes,
//! while order-of-magnitude breakage fails. Exits non-zero listing every
//! violated cell.

use wsd_core::engine::Ensemble;
use wsd_core::{Algorithm, CounterConfig};
use wsd_graph::{ExactCounter, Pattern};
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::{EventStream, Scenario};

const REPLICAS: usize = 8;
const BASE_SEED: u64 = 1000;

struct Gate {
    stream: &'static str,
    algorithm: Algorithm,
    pattern: Pattern,
    /// Maximum tolerated `|mean - truth| / truth`.
    bound: f64,
}

/// The gated cells. Bounds pinned ≈2–3× above the observed fixed-seed
/// errors (see the table `accuracy_gate` prints; WSD-U 4-clique — the
/// uniform-weight control — carries the widest band, matching its
/// by-design variance, and the uniform baselines carry wider bands than
/// the weighted samplers for the same reason). 4-cliques are gated on
/// the hub stream only: the BA stream's exact 4-clique count is a
/// double-digit number at this scale, so its relative error at a 20%
/// budget is variance, not signal.
#[rustfmt::skip]
const GATES: &[Gate] = &[
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "ba-light",  algorithm: Algorithm::Triest,     pattern: Pattern::Triangle,   bound: 0.08 },
    Gate { stream: "ba-light",  algorithm: Algorithm::ThinkD,     pattern: Pattern::Triangle,   bound: 0.05 },
    Gate { stream: "ba-light",  algorithm: Algorithm::Wrs,        pattern: Pattern::Triangle,   bound: 0.05 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::Triangle,   bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::Triangle,   bound: 0.12 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::Triangle,   bound: 0.20 },
    Gate { stream: "hub-light", algorithm: Algorithm::Triest,     pattern: Pattern::Triangle,   bound: 0.12 },
    Gate { stream: "hub-light", algorithm: Algorithm::ThinkD,     pattern: Pattern::Triangle,   bound: 0.10 },
    Gate { stream: "hub-light", algorithm: Algorithm::Wrs,        pattern: Pattern::Triangle,   bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdH,       pattern: Pattern::FourClique, bound: 0.20 },
    Gate { stream: "hub-light", algorithm: Algorithm::WsdUniform, pattern: Pattern::FourClique, bound: 0.50 },
    Gate { stream: "hub-light", algorithm: Algorithm::GpsA,       pattern: Pattern::FourClique, bound: 0.15 },
    Gate { stream: "hub-light", algorithm: Algorithm::Triest,     pattern: Pattern::FourClique, bound: 0.60 },
    Gate { stream: "hub-light", algorithm: Algorithm::ThinkD,     pattern: Pattern::FourClique, bound: 0.25 },
    Gate { stream: "hub-light", algorithm: Algorithm::Wrs,        pattern: Pattern::FourClique, bound: 0.90 },
];

fn streams() -> Vec<(&'static str, EventStream)> {
    let ba = GeneratorConfig::BarabasiAlbert { vertices: 1200, edges_per_vertex: 5 }.generate(7);
    let hub = GeneratorConfig::HubClique { clique: 32, spokes: 1500 }.generate(17);
    vec![
        ("ba-light", Scenario::default_light().apply(&ba, 3)),
        ("hub-light", Scenario::default_light().apply(&hub, 8)),
    ]
}

fn main() {
    let mut failures = Vec::new();
    for (name, events) in streams() {
        let capacity = events.len() / 5;
        let truth_of = |pattern| {
            ExactCounter::count_stream(pattern, events.iter().copied())
                .expect("generated streams are feasible") as f64
        };
        let truths = [
            (Pattern::Triangle, truth_of(Pattern::Triangle)),
            (Pattern::FourClique, truth_of(Pattern::FourClique)),
        ];
        eprintln!(
            "accuracy_gate: {name} ({} events, M={capacity}, truths: tri={}, 4c={})",
            events.len(),
            truths[0].1,
            truths[1].1
        );
        for gate in GATES.iter().filter(|g| g.stream == name) {
            let truth = truths
                .iter()
                .find(|(p, _)| *p == gate.pattern)
                .expect("gated pattern has a truth")
                .1;
            assert!(truth > 0.0, "{name}: ground truth for {} is 0", gate.pattern.name());
            let report = Ensemble::new(REPLICAS).with_base_seed(BASE_SEED).run(&events, |seed| {
                CounterConfig::new(gate.pattern, capacity, seed).build(gate.algorithm)
            });
            let err = (report.mean - truth).abs() / truth;
            let verdict = if err <= gate.bound { "ok" } else { "FAIL" };
            eprintln!(
                "  {:>6} x {:<9} rel-err {:>7.4} (bound {:.2}) {}",
                gate.algorithm.name(),
                gate.pattern.name(),
                err,
                gate.bound,
                verdict
            );
            if err > gate.bound {
                failures.push(format!(
                    "{name}: {} on {}: relative error {err:.4} exceeds bound {:.2}",
                    gate.algorithm.name(),
                    gate.pattern.name(),
                    gate.bound
                ));
            }
        }
    }
    if failures.is_empty() {
        eprintln!("accuracy_gate: all {} cells within bounds", GATES.len());
    } else {
        eprintln!("accuracy_gate: {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
