//! **Table IX** — counting **triangles** under the **light deletion**
//! scenario (βl = 0.2).

use wsd_bench::experiments::comparison_table;
use wsd_bench::Args;
use wsd_graph::Pattern;

fn main() {
    let mut args = Args::parse();
    args.scenario = "light".to_string();
    let t = comparison_table(Pattern::Triangle, &args);
    t.emit("Table IX: triangles, light deletion", args.csv.as_deref());
}
