//! **Table XI** — WSD-L training time for triangles (△) and wedges (∧)
//! on the four real training graphs under the **light** deletion
//! scenario.

use wsd_bench::experiments::training_time_table;
use wsd_bench::Args;

fn main() {
    let mut args = Args::parse();
    args.scenario = "light".to_string();
    let t = training_time_table(&args);
    t.emit("Table XI: training time, light deletion", args.csv.as_deref());
}
