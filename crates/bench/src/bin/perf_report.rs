//! `perf_report` — fixed-seed sampler throughput snapshot.
//!
//! Runs every deletion-capable sampler over a grid of deterministic
//! streams × evaluation patterns and reports the median events/sec,
//! writing a machine-readable JSON report. The grid covers two stream
//! shapes plus a session scenario:
//!
//! * `ba-light` — a Barabási–Albert stream under the light-deletion
//!   scenario (the historical grid; comparable back to `BENCH_PR2.json`);
//! * `hub-heavy` — a hub-clique stream (dense core, fanout-2 spoke
//!   fringes) whose core–core events are hub–hub intersections with
//!   long skippable non-common runs, the galloping kernel's target
//!   regime;
//! * `sampler-grid-ba` / `sampler-grid-hub` — every algorithm with
//!   *zero* attached queries on the same two streams: the
//!   admission/eviction/reservoir-maintenance hot path in isolation,
//!   the direct measurement surface for reservoir-path optimisations
//!   (run-partitioned admission plans, SoA heap/sample writes);
//! * `weight-grid-ba` / `weight-grid-hub` — the weighted sampler's
//!   zero-query admission path under the three weight surfaces: the
//!   checked-in learned `LinearPolicy` (WSD-L), `HeuristicWeight`
//!   (WSD-H) and the affine `UniformWeight` (WSD-Uniform).
//!   `WeightFn::evaluate` sits on the insert hot path, so these cells
//!   are the direct price tag of upgrading a tenant from heuristic to
//!   learned weights;
//! * `session-grid-ba` / `session-grid-hub` — the multi-query session
//!   comparison on the same two streams: one shared triangle-weighted
//!   sampler answering wedge+triangle+4-clique at once versus three
//!   independent single-query samplers, *paired within each timing rep
//!   in alternated order* (the per-rep ratio is robust to host drift;
//!   the session row carries the median paired ratio as
//!   `paired_speedup`). The hub scenario additionally carries *layered*
//!   cells: the same 3-query session with the one-pass layered
//!   enumeration plan vs per-query enumeration passes, paired the same
//!   way — the direct measurement of what enumeration sharing buys in
//!   the enumeration-bound regime.
//!
//! The streams, seeds and methodology are pinned so the numbers are
//! comparable across commits: each PR that claims a hot-path win
//! regenerates the report (optionally passing the previous report via
//! `--perf-baseline` to get speedup columns) and checks it in at the
//! repo root.
//!
//! ```text
//! perf_report [--quick] [--out PATH] [--perf-baseline PATH]
//!             [--vertices N] [--time-reps N] [--methodology STR]
//! ```
//!
//! `--quick` shrinks the streams for CI smoke runs (the report is still
//! written, to the same schema; speedup columns are suppressed per
//! scenario when the baseline's stream header shows a different event
//! count — ratios against a different workload are noise, not signal).
//! The JSON is emitted one result object
//! per line so prior reports can be re-read without a JSON dependency;
//! result rows carry a `scenario` field, and baseline rows without one
//! (pre-hub-grid reports) are matched against the `ba-light` scenario.
//! The `methodology` field records how the numbers were produced;
//! checked-in reports on noisy shared hosts are typically per-cell
//! medians over several runs alternated with the baseline binary
//! (aggregate with `--methodology` describing the protocol), since
//! paired ratios are far more stable than absolute rates there.

use std::time::Instant;
use wsd_core::{Algorithm, SessionBuilder, StreamSession};
use wsd_graph::Pattern;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::{EventStream, Scenario};

/// Generator seed (edge list) and scenario seed (deletion placement).
const GEN_SEED: u64 = 7;
const SCENARIO_SEED: u64 = 3;
/// Hub-clique stream seeds (match the hub-clique golden scenario).
const HUB_GEN_SEED: u64 = 17;
const HUB_SCENARIO_SEED: u64 = 8;
/// Counter seed — same for every cell, as in `sampler_throughput`.
const COUNTER_SEED: u64 = 42;

struct Cell {
    scenario: &'static str,
    algorithm: &'static str,
    pattern: String,
    events_per_sec: f64,
    /// Median per-rep paired ratio (session vs three counters) —
    /// session-grid rows only.
    paired_speedup: Option<f64>,
}

struct Grid {
    name: &'static str,
    describe: String,
    events: EventStream,
    capacity: usize,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// One full single-query pass; returns the wall-clock seconds.
fn time_single(alg: Algorithm, pattern: Pattern, capacity: usize, events: &EventStream) -> f64 {
    let mut session = SessionBuilder::new(alg, capacity, COUNTER_SEED).query(pattern).build();
    let (qid, _) = session.queries().next().expect("one query");
    let start = Instant::now();
    session.process_all(events);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(session.estimate(qid));
    secs
}

/// One full zero-query pass — the sampler-grid cell: pure admission /
/// eviction / reservoir-maintenance throughput, no estimator work on
/// top. The weighted samplers still observe their edge weight on the
/// triangle (that enumeration is part of their admission cost);
/// `WsdUniform`'s affine weight skips enumeration entirely, so its cell
/// is the floor of the reservoir write path itself.
fn time_bare(
    alg: Algorithm,
    capacity: usize,
    events: &EventStream,
    policy: Option<&wsd_core::LinearPolicy>,
) -> f64 {
    let mut builder =
        SessionBuilder::new(alg, capacity, COUNTER_SEED).with_weight_pattern(Pattern::Triangle);
    if let Some(policy) = policy {
        builder = builder.with_policy(policy.clone());
    }
    let mut session = builder.build();
    let start = Instant::now();
    session.process_all(events);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(session.stored_edges());
    secs
}

/// The wedge+triangle+4-clique session used by the session grid (weight
/// observed on the triangle, the paper's primary pattern). `layered`
/// selects the one-pass layered enumeration plan (the default) or the
/// per-query enumeration passes (the PR-5 behaviour, kept as the paired
/// reference for the layered cells).
fn session_grid_session(alg: Algorithm, capacity: usize, layered: bool) -> StreamSession {
    SessionBuilder::new(alg, capacity, COUNTER_SEED)
        .query(Pattern::Wedge)
        .query(Pattern::Triangle)
        .query(Pattern::FourClique)
        .with_weight_pattern(Pattern::Triangle)
        .with_layered(layered)
        .build()
}

/// One full 3-query session pass; returns the wall-clock seconds.
fn time_session(alg: Algorithm, capacity: usize, events: &EventStream, layered: bool) -> f64 {
    let mut session = session_grid_session(alg, capacity, layered);
    let start = Instant::now();
    session.process_all(events);
    let secs = start.elapsed().as_secs_f64();
    for (qid, _) in session.queries().collect::<Vec<_>>() {
        std::hint::black_box(session.estimate(qid));
    }
    secs
}

/// Three full independent single-query passes (one per pattern);
/// returns the summed wall-clock seconds — the legacy cost of the grid.
fn time_trio(alg: Algorithm, capacity: usize, events: &EventStream) -> f64 {
    [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique]
        .into_iter()
        .map(|p| time_single(alg, p, capacity, events))
        .sum()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| argv.iter().any(|a| a == name);
    let opt = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("missing value for {name}")).clone())
    };
    let quick = flag("--quick");
    let vertices: u64 = opt("--vertices")
        .map(|v| v.parse().expect("--vertices expects an integer"))
        .unwrap_or(if quick { 600 } else { 4_000 });
    let time_reps: usize = opt("--time-reps")
        .map(|v| v.parse().expect("--time-reps expects an integer"))
        .unwrap_or(if quick { 1 } else { 5 });
    assert!(time_reps >= 1, "--time-reps must be >= 1");
    let out = opt("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let methodology = opt("--methodology").unwrap_or_else(|| {
        format!("single run on one host; median of {time_reps} full stream passes per cell")
    });
    let baseline_path = opt("--perf-baseline");
    let baseline = baseline_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let ba_edges =
        GeneratorConfig::BarabasiAlbert { vertices, edges_per_vertex: 5 }.generate(GEN_SEED);
    let ba_events = Scenario::default_light().apply(&ba_edges, SCENARIO_SEED);
    // ~5% budget, as in the benches.
    let ba_capacity = (ba_events.len() / 20).max(64);
    // Hub-clique: scale the spoke count with --vertices so --quick
    // shrinks this stream too; the fanout-2 spokes push the 24 cores far
    // past the galloping-shadow threshold while keeping any two cores'
    // fringes mostly disjoint — core–core events are gallop-tier
    // intersections with long skippable runs.
    let spokes = vertices.max(100);
    let hub_edges = GeneratorConfig::HubClique { clique: 24, spokes }.generate(HUB_GEN_SEED);
    let hub_events = Scenario::default_light().apply(&hub_edges, HUB_SCENARIO_SEED);
    let hub_capacity = (hub_events.len() / 10).max(64);
    let grids = [
        Grid {
            name: "ba-light",
            describe: format!(
                "{{\"generator\": \"barabasi-albert\", \"vertices\": {vertices}, \
                 \"edges_per_vertex\": 5, \"scenario\": \"light\", \"events\": {}, \
                 \"capacity\": {ba_capacity}, \"gen_seed\": {GEN_SEED}, \
                 \"scenario_seed\": {SCENARIO_SEED}}}",
                ba_events.len()
            ),
            events: ba_events,
            capacity: ba_capacity,
        },
        Grid {
            name: "hub-heavy",
            describe: format!(
                "{{\"generator\": \"hub-clique\", \"clique\": 24, \"spokes\": {spokes}, \
                 \"scenario\": \"light\", \"events\": {}, \"capacity\": {hub_capacity}, \
                 \"gen_seed\": {HUB_GEN_SEED}, \"scenario_seed\": {HUB_SCENARIO_SEED}}}",
                hub_events.len()
            ),
            events: hub_events,
            capacity: hub_capacity,
        },
    ];

    // Serve-grid workload: N concurrent sessions on a loopback server,
    // all fed the same feasible stream prefix. Sized here so the stream
    // headers (and baseline comparability) can be computed up front.
    let serve_sessions: usize = opt("--serve-sessions")
        .map(|v| v.parse().expect("--serve-sessions expects an integer"))
        .unwrap_or(if quick { 128 } else { 1024 });
    let serve_events_per_session = grids[0].events.len().min(if quick { 400 } else { 2_000 });
    let serve_total_events = serve_sessions * serve_events_per_session;
    let serve_describe = format!(
        "{{\"generator\": \"ba-light prefix\", \"sessions\": {serve_sessions}, \
         \"events_per_session\": {serve_events_per_session}, \"events\": {serve_total_events}, \
         \"capacity\": 64}}"
    );

    // Per-scenario workload sizes drive both speedup-column gating and
    // the self-describing `baseline` block in the JSON: a reader of the
    // artifact must not need this binary's stderr to know *why* a
    // column is missing.
    let scenario_workloads: Vec<(&'static str, usize, String)> = vec![
        ("ba-light", grids[0].events.len(), grids[0].describe.clone()),
        ("hub-heavy", grids[1].events.len(), grids[1].describe.clone()),
        ("serve-grid", serve_total_events, serve_describe),
    ];
    let baseline_status: Vec<(&'static str, bool, String)> = scenario_workloads
        .iter()
        .map(|(name, events, _)| match baseline.as_deref() {
            None => (*name, false, "no baseline supplied".to_string()),
            Some(b) => match baseline_stream_events(b, name) {
                None => (
                    *name,
                    false,
                    "scenario missing from baseline; speedup columns suppressed".to_string(),
                ),
                Some(n) if n == *events => (*name, true, "comparable".to_string()),
                Some(n) => (
                    *name,
                    false,
                    format!(
                        "workload mismatch: baseline stream has {n} events, this run has \
                         {events}; speedup columns suppressed"
                    ),
                ),
            },
        })
        .collect();
    if baseline.is_some() {
        for (name, comparable, reason) in &baseline_status {
            if !comparable {
                eprintln!("perf_report: baseline {name}: {reason}");
            }
        }
    }

    let algorithms = [
        Algorithm::WsdH,
        Algorithm::WsdUniform,
        Algorithm::GpsA,
        Algorithm::Triest,
        Algorithm::ThinkD,
        Algorithm::Wrs,
    ];
    let patterns = [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique];

    let mut cells = Vec::new();
    for grid in &grids {
        eprintln!(
            "perf_report: {} (|S|={}, capacity M={}, {} timing reps)",
            grid.name,
            grid.events.len(),
            grid.capacity,
            time_reps
        );
        for pattern in patterns {
            for alg in algorithms {
                let mut rates = Vec::with_capacity(time_reps);
                for _ in 0..time_reps {
                    let secs = time_single(alg, pattern, grid.capacity, &grid.events);
                    rates.push(grid.events.len() as f64 / secs);
                }
                let events_per_sec = median(rates);
                eprintln!(
                    "  {:>9} {:>8} x {:<9} {:>12.0} events/sec",
                    grid.name,
                    alg.name(),
                    pattern.name(),
                    events_per_sec
                );
                cells.push(Cell {
                    scenario: grid.name,
                    algorithm: alg.name(),
                    pattern: pattern.name(),
                    events_per_sec,
                    paired_speedup: None,
                });
            }
        }
    }

    // Sampler grid: every algorithm with ZERO attached queries — the
    // admission/eviction hot path in isolation. These cells are the
    // direct measurement surface for reservoir-path work (run plans,
    // SoA writes): a win here that doesn't show up in the query grids
    // is estimator-bound, not admission-bound.
    for (scenario, grid) in [("sampler-grid-ba", &grids[0]), ("sampler-grid-hub", &grids[1])] {
        eprintln!(
            "perf_report: {scenario} (|S|={}, capacity M={}, {} timing reps, zero queries)",
            grid.events.len(),
            grid.capacity,
            time_reps
        );
        for alg in algorithms {
            let mut rates = Vec::with_capacity(time_reps);
            for _ in 0..time_reps {
                let secs = time_bare(alg, grid.capacity, &grid.events, None);
                rates.push(grid.events.len() as f64 / secs);
            }
            let events_per_sec = median(rates);
            eprintln!(
                "  {:>15} {:>8} x {:<12} {:>12.0} events/sec",
                scenario,
                alg.name(),
                "(0 queries)",
                events_per_sec
            );
            cells.push(Cell {
                scenario,
                algorithm: alg.name(),
                pattern: "(0 queries)".to_string(),
                events_per_sec,
                paired_speedup: None,
            });
        }
    }

    // Weight-function grid: the same zero-query admission path, but
    // varying the *weight surface* instead of the algorithm — the
    // checked-in learned triangle policy (WSD-L) against the heuristic
    // (WSD-H) and affine-uniform (WSD-Uniform) weights at equal
    // capacity. `WeightFn::evaluate` runs once per candidate admission,
    // so the spread between these cells is the insert-path cost of
    // serving learned weights.
    {
        let registry = wsd_core::PolicyRegistry::open(wsd_bench::policies::policy_cache_dir())
            .expect("weight-grid: open checked-in policy registry");
        let weight_cells = [
            ("weight-grid-ba", "ba-light", &grids[0]),
            ("weight-grid-hub", "hub-light", &grids[1]),
        ];
        for (scenario, family, grid) in weight_cells {
            let artifact = registry.lookup(Pattern::Triangle, family).unwrap_or_else(|| {
                panic!("weight-grid: no checked-in {family} triangle artifact (run wsd-train)")
            });
            eprintln!(
                "perf_report: {scenario} (|S|={}, capacity M={}, {} timing reps, zero queries, \
                 triangle weight)",
                grid.events.len(),
                grid.capacity,
                time_reps
            );
            let surfaces: [(&str, Algorithm, Option<&wsd_core::LinearPolicy>); 3] = [
                ("WSD-L", Algorithm::WsdL, Some(&artifact.policy)),
                ("WSD-H", Algorithm::WsdH, None),
                ("WSD-Uniform", Algorithm::WsdUniform, None),
            ];
            for (name, alg, policy) in surfaces {
                let mut rates = Vec::with_capacity(time_reps);
                for _ in 0..time_reps {
                    let secs = time_bare(alg, grid.capacity, &grid.events, policy);
                    rates.push(grid.events.len() as f64 / secs);
                }
                let events_per_sec = median(rates);
                eprintln!(
                    "  {:>15} {:>11} x {:<12} {:>12.0} events/sec",
                    scenario, name, "(0 queries)", events_per_sec
                );
                cells.push(Cell {
                    scenario,
                    algorithm: name,
                    pattern: "(0 queries)".to_string(),
                    events_per_sec,
                    paired_speedup: None,
                });
            }
        }
    }

    // Session grid: one shared triangle-weighted sampler answering
    // wedge+triangle+4-clique vs three independent single-query
    // samplers, paired and order-alternated within each rep.
    for (scenario, grid) in [("session-grid-ba", &grids[0]), ("session-grid-hub", &grids[1])] {
        eprintln!(
            "perf_report: {scenario} (|S|={}, capacity M={}, {} paired reps, alternated order)",
            grid.events.len(),
            grid.capacity,
            time_reps
        );
        let n = grid.events.len() as f64;
        for alg in [Algorithm::WsdH, Algorithm::WsdUniform, Algorithm::GpsA] {
            let mut session_rates = Vec::with_capacity(time_reps);
            let mut trio_rates = Vec::with_capacity(time_reps);
            let mut ratios = Vec::with_capacity(time_reps);
            for rep in 0..time_reps {
                let (t_session, t_trio) = if rep % 2 == 0 {
                    let s = time_session(alg, grid.capacity, &grid.events, true);
                    let t = time_trio(alg, grid.capacity, &grid.events);
                    (s, t)
                } else {
                    let t = time_trio(alg, grid.capacity, &grid.events);
                    let s = time_session(alg, grid.capacity, &grid.events, true);
                    (s, t)
                };
                session_rates.push(n / t_session);
                trio_rates.push(n / t_trio);
                ratios.push(t_trio / t_session);
            }
            let paired = median(ratios);
            eprintln!(
                "  {:>16} {:>8}  session {:>12.0} ev/s  3-counters {:>12.0} ev/s  paired {:>5.2}x",
                scenario,
                alg.name(),
                median(session_rates.clone()),
                median(trio_rates.clone()),
                paired
            );
            cells.push(Cell {
                scenario,
                algorithm: alg.name(),
                pattern: "wedge+tri+4c (session)".to_string(),
                events_per_sec: median(session_rates),
                paired_speedup: Some(paired),
            });
            cells.push(Cell {
                scenario,
                algorithm: alg.name(),
                pattern: "wedge+tri+4c (3 counters)".to_string(),
                events_per_sec: median(trio_rates),
                paired_speedup: None,
            });
        }
    }

    // Layered-enumeration cells: the same 3-query session with the
    // one-pass layered plan (the default) vs per-query enumeration
    // passes, paired and order-alternated within each rep. Hub grid
    // only — that's the enumeration-bound regime layering targets.
    {
        let grid = &grids[1];
        eprintln!(
            "perf_report: session-grid-hub layered (|S|={}, capacity M={}, {} paired reps, \
             alternated order)",
            grid.events.len(),
            grid.capacity,
            time_reps
        );
        let n = grid.events.len() as f64;
        for alg in [Algorithm::WsdH, Algorithm::WsdUniform, Algorithm::GpsA] {
            let mut layered_rates = Vec::with_capacity(time_reps);
            let mut plain_rates = Vec::with_capacity(time_reps);
            let mut ratios = Vec::with_capacity(time_reps);
            for rep in 0..time_reps {
                let (t_layered, t_plain) = if rep % 2 == 0 {
                    let l = time_session(alg, grid.capacity, &grid.events, true);
                    let p = time_session(alg, grid.capacity, &grid.events, false);
                    (l, p)
                } else {
                    let p = time_session(alg, grid.capacity, &grid.events, false);
                    let l = time_session(alg, grid.capacity, &grid.events, true);
                    (l, p)
                };
                layered_rates.push(n / t_layered);
                plain_rates.push(n / t_plain);
                ratios.push(t_plain / t_layered);
            }
            let paired = median(ratios);
            eprintln!(
                "  session-grid-hub {:>8}  layered {:>12.0} ev/s  per-query {:>12.0} ev/s  \
                 paired {:>5.2}x",
                alg.name(),
                median(layered_rates.clone()),
                median(plain_rates.clone()),
                paired
            );
            cells.push(Cell {
                scenario: "session-grid-hub",
                algorithm: alg.name(),
                pattern: "wedge+tri+4c (layered session)".to_string(),
                events_per_sec: median(layered_rates),
                paired_speedup: Some(paired),
            });
            cells.push(Cell {
                scenario: "session-grid-hub",
                algorithm: alg.name(),
                pattern: "wedge+tri+4c (per-query session)".to_string(),
                events_per_sec: median(plain_rates),
                paired_speedup: None,
            });
        }
    }

    // Serve grid: aggregate many-tenant throughput through the whole
    // server stack — TCP loopback, frame decode, SPSC rings, sharded
    // workers — with every session ingesting concurrently. This is the
    // serving-layer acceptance cell: ≥ 1000 concurrent sessions in the
    // full (non-quick) configuration, reported as aggregate events/sec
    // across all sessions.
    {
        let serve_stream = &grids[0].events[..serve_events_per_session];
        let serve_algorithms =
            [Algorithm::WsdH, Algorithm::Triest, Algorithm::ThinkD, Algorithm::Wrs];
        eprintln!(
            "perf_report: serve-grid ({serve_sessions} sessions x {serve_events_per_session} \
             events each, {time_reps} timing reps)"
        );
        let mut rates = Vec::with_capacity(time_reps);
        for _ in 0..time_reps {
            let server = wsd_serve::serve("127.0.0.1:0", wsd_serve::ServerConfig::default())
                .expect("serve-grid: bind server");
            let mut client =
                wsd_serve::Client::connect(server.local_addr()).expect("serve-grid: connect");
            let ids: Vec<u64> = (0..serve_sessions)
                .map(|i| {
                    client
                        .open(
                            serve_algorithms[i % serve_algorithms.len()],
                            64,
                            Some(COUNTER_SEED),
                            &[Pattern::Triangle],
                        )
                        .expect("serve-grid: open")
                })
                .collect();
            let start = Instant::now();
            for chunk in serve_stream.chunks(512) {
                for &id in &ids {
                    client.send_events(id, chunk).expect("serve-grid: send");
                }
            }
            for &id in &ids {
                client.flush(id).expect("serve-grid: flush");
            }
            rates.push(serve_total_events as f64 / start.elapsed().as_secs_f64());
            server.shutdown();
        }
        let events_per_sec = median(rates);
        eprintln!(
            "  {:>10} {:>30} x {:<24} {:>12.0} events/sec aggregate",
            "serve-grid",
            "mixed(WSD-H,Triest,ThinkD,WRS)",
            format!("triangle x {serve_sessions}"),
            events_per_sec
        );
        cells.push(Cell {
            scenario: "serve-grid",
            algorithm: "mixed(WSD-H,Triest,ThinkD,WRS)",
            pattern: format!("triangle x {serve_sessions} sessions"),
            events_per_sec,
            paired_speedup: None,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    // Primary stream header kept for backwards compatibility with
    // pre-hub-grid readers; the full grid is under "streams".
    json.push_str(&format!("  \"stream\": {},\n", grids[0].describe));
    json.push_str("  \"streams\": {\n");
    for (i, (name, _, describe)) in scenario_workloads.iter().enumerate() {
        let comma = if i + 1 < scenario_workloads.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {describe}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"methodology\": \"{}\",\n", json_escape(&methodology)));
    // Self-describing baseline record: the artifact states what it was
    // compared against and, per scenario, why speedup columns are
    // present or suppressed — no stderr context needed.
    match &baseline_path {
        Some(path) => {
            json.push_str(&format!(
                "  \"baseline\": {{\n    \"path\": \"{}\",\n    \"scenarios\": {{\n",
                json_escape(path)
            ));
            for (i, (name, _, reason)) in baseline_status.iter().enumerate() {
                let comma = if i + 1 < baseline_status.len() { "," } else { "" };
                json.push_str(&format!("      \"{name}\": \"{}\"{comma}\n", json_escape(reason)));
            }
            json.push_str("    }\n  },\n");
        }
        None => json.push_str("  \"baseline\": null,\n"),
    }
    json.push_str(&format!("  \"time_reps\": {time_reps},\n"));
    json.push_str("  \"results\": [\n");
    // Speedup columns only against the *same* workload: a --quick run
    // must not publish ratios against a full-size baseline. Derived
    // scenarios (sampler/session grids) share their underlying stream's
    // comparability.
    let mut comparable: std::collections::HashMap<&str, bool> =
        baseline_status.iter().map(|(name, ok, _)| (*name, *ok)).collect();
    let ba = comparable.get("ba-light").copied().unwrap_or(false);
    let hub = comparable.get("hub-heavy").copied().unwrap_or(false);
    comparable.extend([
        ("sampler-grid-ba", ba),
        ("sampler-grid-hub", hub),
        ("weight-grid-ba", ba),
        ("weight-grid-hub", hub),
        ("session-grid-ba", ba),
        ("session-grid-hub", hub),
    ]);
    for (i, c) in cells.iter().enumerate() {
        let base = baseline
            .as_deref()
            .filter(|_| comparable.get(c.scenario).copied().unwrap_or(false))
            .and_then(|b| baseline_rate(b, c.scenario, c.algorithm, &c.pattern));
        let mut line = format!(
            "    {{\"scenario\": \"{}\", \"algorithm\": \"{}\", \"pattern\": \"{}\", \
             \"events_per_sec\": {:.1}",
            c.scenario, c.algorithm, c.pattern, c.events_per_sec
        );
        if let Some(base) = base {
            line.push_str(&format!(
                ", \"baseline_events_per_sec\": {:.1}, \"speedup\": {:.3}",
                base,
                c.events_per_sec / base
            ));
        }
        if let Some(paired) = c.paired_speedup {
            line.push_str(&format!(", \"paired_speedup\": {paired:.3}"));
        }
        line.push('}');
        if i + 1 < cells.len() {
            line.push(',');
        }
        line.push('\n');
        json.push_str(&line);
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("perf_report: wrote {out}");
}

/// Escapes a free-text string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Finds the brace-matched `{...}` object that follows `"key":`. Works
/// on both the writer's compact one-line format and pretty-printed
/// reports (checked-in baselines aggregated by external tooling are
/// typically reformatted).
fn object_after<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let mut from = 0;
    while let Some(hit) = text[from..].find(&needle) {
        let start = from + hit + needle.len();
        from = start;
        // The same key can appear elsewhere with a non-object value
        // (e.g. a scenario name inside the baseline reasons map); keep
        // scanning until the value is an object.
        let tail = text[start..].trim_start();
        if !tail.starts_with('{') {
            continue;
        }
        let mut depth = 0usize;
        for (i, c) in tail.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&tail[..=i]);
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    None
}

/// Whether `obj` has string key `key` with exactly the value `want`.
fn key_str_eq(obj: &str, key: &str, want: &str) -> bool {
    let needle = format!("\"{key}\":");
    match obj.find(&needle) {
        Some(i) => obj[i + needle.len()..].trim_start().starts_with(&format!("\"{want}\"")),
        None => false,
    }
}

/// Numeric value of `key` inside `obj`, if present.
fn key_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let tail = obj[obj.find(&needle)? + needle.len()..].trim_start();
    let num: String =
        tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

/// Pulls the event count of a scenario's stream header out of a prior
/// report, so speedup columns are only emitted against the *same*
/// workload. Looks for the scenario's entry in the `streams` block and
/// falls back to the legacy top-level `stream` header (pre-hub-grid
/// reports) for `ba-light`. Tolerant of reformatted (pretty-printed)
/// baselines.
fn baseline_stream_events(report: &str, scenario: &str) -> Option<usize> {
    let obj = object_after(report, scenario)
        .or_else(|| (scenario == "ba-light").then(|| object_after(report, "stream")).flatten())?;
    key_num(obj, "events").map(|n| n as usize)
}

/// Pulls `events_per_sec` for a (scenario, algorithm, pattern) cell out
/// of a prior report by brace-matching each object in its `results`
/// array — no JSON parser dependency, and no assumption that a result
/// object sits on one line. Baseline rows without a scenario key
/// (reports older than the hub grid) are treated as `ba-light`.
fn baseline_rate(report: &str, scenario: &str, algorithm: &str, pattern: &str) -> Option<f64> {
    let start = report.find("\"results\"")?;
    let tail = &report[start..];
    let mut depth = 0usize;
    let mut obj_start = None;
    for (i, c) in tail.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    let obj = &tail[obj_start?..=i];
                    let scenario_matches = if obj.contains("\"scenario\"") {
                        key_str_eq(obj, "scenario", scenario)
                    } else {
                        scenario == "ba-light"
                    };
                    if scenario_matches
                        && key_str_eq(obj, "algorithm", algorithm)
                        && key_str_eq(obj, "pattern", pattern)
                    {
                        return key_num(obj, "events_per_sec");
                    }
                }
            }
            _ => {}
        }
    }
    None
}
