//! `perf_report` — fixed-seed sampler throughput snapshot.
//!
//! Runs every deletion-capable sampler over one deterministic
//! Barabási–Albert stream (light-deletion scenario) for each evaluation
//! pattern and reports the median events/sec, writing a machine-readable
//! JSON report. The stream, seeds and methodology are pinned so the
//! numbers are comparable across commits: each PR that claims a hot-path
//! win regenerates the report (optionally passing the previous report
//! via `--perf-baseline` to get speedup columns) and checks it in at the
//! repo root.
//!
//! ```text
//! perf_report [--quick] [--out PATH] [--perf-baseline PATH]
//!             [--vertices N] [--time-reps N]
//! ```
//!
//! ```text
//! perf_report ... [--methodology STR]
//! ```
//!
//! `--quick` shrinks the stream for CI smoke runs (the report is still
//! written, to the same schema). The JSON is emitted one result object
//! per line so prior reports can be re-read without a JSON dependency.
//! The `methodology` field records how the numbers were produced;
//! checked-in reports on noisy shared hosts are typically per-cell
//! medians over several runs alternated with the baseline binary
//! (aggregate with `--methodology` describing the protocol), since
//! paired ratios are far more stable than absolute rates there.

use std::time::Instant;
use wsd_core::{Algorithm, CounterConfig};
use wsd_graph::Pattern;
use wsd_stream::gen::GeneratorConfig;
use wsd_stream::Scenario;

/// Generator seed (edge list) and scenario seed (deletion placement).
const GEN_SEED: u64 = 7;
const SCENARIO_SEED: u64 = 3;
/// Counter seed — same for every cell, as in `sampler_throughput`.
const COUNTER_SEED: u64 = 42;

struct Cell {
    algorithm: &'static str,
    pattern: String,
    events_per_sec: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| argv.iter().any(|a| a == name);
    let opt = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .map(|i| argv.get(i + 1).unwrap_or_else(|| panic!("missing value for {name}")).clone())
    };
    let quick = flag("--quick");
    let vertices: u64 = opt("--vertices")
        .map(|v| v.parse().expect("--vertices expects an integer"))
        .unwrap_or(if quick { 600 } else { 4_000 });
    let time_reps: usize = opt("--time-reps")
        .map(|v| v.parse().expect("--time-reps expects an integer"))
        .unwrap_or(if quick { 1 } else { 5 });
    assert!(time_reps >= 1, "--time-reps must be >= 1");
    let out = opt("--out").unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let methodology = opt("--methodology").unwrap_or_else(|| {
        format!("single run on one host; median of {time_reps} full stream passes per cell")
    });
    let baseline = opt("--perf-baseline").map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"))
    });

    let edges =
        GeneratorConfig::BarabasiAlbert { vertices, edges_per_vertex: 5 }.generate(GEN_SEED);
    let events = Scenario::default_light().apply(&edges, SCENARIO_SEED);
    let capacity = (events.len() / 20).max(64); // ~5% budget, as in the benches
    eprintln!(
        "perf_report: BA n={} (|E|={}, |S|={}), capacity M={}, {} timing reps",
        vertices,
        edges.len(),
        events.len(),
        capacity,
        time_reps
    );

    let algorithms = [
        Algorithm::WsdH,
        Algorithm::WsdUniform,
        Algorithm::GpsA,
        Algorithm::Triest,
        Algorithm::ThinkD,
        Algorithm::Wrs,
    ];
    let patterns = [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique];

    let mut cells = Vec::new();
    for pattern in patterns {
        for alg in algorithms {
            let mut rates = Vec::with_capacity(time_reps);
            for _ in 0..time_reps {
                let mut counter = CounterConfig::new(pattern, capacity, COUNTER_SEED).build(alg);
                let start = Instant::now();
                counter.process_all(&events);
                let secs = start.elapsed().as_secs_f64();
                std::hint::black_box(counter.estimate());
                rates.push(events.len() as f64 / secs);
            }
            let events_per_sec = median(rates);
            eprintln!(
                "  {:>8} x {:<9} {:>12.0} events/sec",
                alg.name(),
                pattern.name(),
                events_per_sec
            );
            cells.push(Cell { algorithm: alg.name(), pattern: pattern.name(), events_per_sec });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"stream\": {{\"generator\": \"barabasi-albert\", \"vertices\": {vertices}, \
         \"edges_per_vertex\": 5, \"scenario\": \"light\", \"events\": {}, \
         \"capacity\": {capacity}, \"gen_seed\": {GEN_SEED}, \"scenario_seed\": {SCENARIO_SEED}}},\n",
        events.len()
    ));
    json.push_str(&format!("  \"methodology\": \"{}\",\n", json_escape(&methodology)));
    json.push_str(&format!("  \"time_reps\": {time_reps},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let base = baseline.as_deref().and_then(|b| baseline_rate(b, c.algorithm, &c.pattern));
        let mut line = format!(
            "    {{\"algorithm\": \"{}\", \"pattern\": \"{}\", \"events_per_sec\": {:.1}",
            c.algorithm, c.pattern, c.events_per_sec
        );
        if let Some(base) = base {
            line.push_str(&format!(
                ", \"baseline_events_per_sec\": {:.1}, \"speedup\": {:.3}",
                base,
                c.events_per_sec / base
            ));
        }
        line.push('}');
        if i + 1 < cells.len() {
            line.push(',');
        }
        line.push('\n');
        json.push_str(&line);
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("perf_report: wrote {out}");
}

/// Escapes a free-text string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Pulls `events_per_sec` for an (algorithm, pattern) cell out of a
/// prior report. The writer keeps each result object on one line, so a
/// line scan suffices — no JSON parser dependency.
fn baseline_rate(report: &str, algorithm: &str, pattern: &str) -> Option<f64> {
    let alg_key = format!("\"algorithm\": \"{algorithm}\"");
    let pat_key = format!("\"pattern\": \"{pattern}\"");
    for line in report.lines() {
        if line.contains(&alg_key) && line.contains(&pat_key) {
            let tail = line.split("\"events_per_sec\": ").nth(1)?;
            let num: String =
                tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
            return num.parse().ok();
        }
    }
    None
}
