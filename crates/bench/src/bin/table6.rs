//! **Table VI** — the **insertion-only** special case on cit-PT:
//! triangle ARE / MARE / running time for WSD-L, GPS, Triest, ThinkD and
//! WRS. (Without deletions, WSD-H and GPS-A reduce exactly to GPS, so
//! the paper lists plain GPS.)

use wsd_bench::policies::{capacity_for, train_or_load};
use wsd_bench::runner::{run_cell, AlgoSpec, Workload};
use wsd_bench::table::{pct, secs};
use wsd_bench::{Args, Table};
use wsd_core::Algorithm;
use wsd_graph::Pattern;
use wsd_stream::dataset::by_name;
use wsd_stream::Scenario;

fn main() {
    let mut args = Args::parse();
    args.scenario = "insert".to_string();
    let pattern = Pattern::Triangle;
    let test = by_name("cit-PT").expect("registry dataset");
    let train = by_name("cit-HE").expect("registry dataset");
    let edges = test.edges_scaled(args.scale);
    let workload = Workload::build(&edges, Scenario::InsertOnly, pattern, args.seed);
    let capacity = capacity_for(edges.len(), pattern);
    let policy = train_or_load(
        &train,
        args.scale,
        pattern,
        "insert",
        args.train_iters,
        args.seed,
        args.no_cache,
    )
    .policy;
    let algorithms = [
        AlgoSpec::wsd_l(policy),
        AlgoSpec::new(Algorithm::Gps),
        AlgoSpec::new(Algorithm::Triest),
        AlgoSpec::new(Algorithm::ThinkD),
        AlgoSpec::new(Algorithm::Wrs),
    ];
    let mut header = vec!["Metric".to_string()];
    header.extend(algorithms.iter().map(AlgoSpec::label));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let cells: Vec<_> = algorithms
        .iter()
        .map(|spec| {
            eprintln!("running {}…", spec.label());
            run_cell(spec, &workload, capacity, args.seed, args.reps, args.time_reps)
        })
        .collect();
    t.section(&format!("cit-PT, insertion-only ({} events, M = {capacity})", workload.len()));
    t.row(std::iter::once("ARE (%)".to_string()).chain(cells.iter().map(|c| pct(c.are))).collect());
    t.row(
        std::iter::once("MARE (%)".to_string()).chain(cells.iter().map(|c| pct(c.mare))).collect(),
    );
    t.row(
        std::iter::once("Time (s)".to_string())
            .chain(cells.iter().map(|c| secs(c.seconds)))
            .collect(),
    );
    t.emit("Table VI: insertion-only scenario, cit-PT", args.csv.as_deref());
}
