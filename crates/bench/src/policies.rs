//! Train-or-load cache for WSD-L policies.
//!
//! Every experiment that includes a WSD-L column needs a policy trained
//! on the matching training graph (Table I pairing). Training is cheap
//! at this scale but not free, so trained policies are cached as
//! `artifacts/policies/<key>.policy` (the text format of
//! `wsd_rl::policy_io`) keyed by everything that affects the result.

use std::path::PathBuf;
use std::time::Duration;
use wsd_core::{LinearPolicy, TemporalPooling};
use wsd_graph::Pattern;
use wsd_rl::trainer::{train, TrainerConfig};
use wsd_stream::{DatasetSpec, Scenario};

/// Where cached policies live: `<repo>/artifacts/policies`.
pub fn policy_cache_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|root| root.join("artifacts").join("policies"))
        .expect("bench crate lives two levels below the workspace root")
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' }).collect()
}

/// The outcome of [`train_or_load`].
pub struct PolicyOutcome {
    /// The ready-to-use policy.
    pub policy: LinearPolicy,
    /// Wall-clock training time; `None` if loaded from cache.
    pub train_time: Option<Duration>,
}

/// Returns a policy for (training graph, pattern, scenario), training it
/// with `iterations` DDPG steps on first use and caching the result.
///
/// `scale` participates in the cache key because it changes the training
/// graph itself.
#[allow(clippy::too_many_arguments)]
pub fn train_or_load(
    train_spec: &DatasetSpec,
    scale: f64,
    pattern: Pattern,
    scenario_kind: &str,
    iterations: usize,
    seed: u64,
    no_cache: bool,
) -> PolicyOutcome {
    train_or_load_pooled(
        train_spec,
        scale,
        pattern,
        scenario_kind,
        iterations,
        seed,
        no_cache,
        TemporalPooling::Max,
    )
}

/// [`train_or_load`] with an explicit temporal pooling variant (the
/// Table XIII ablation trains separate Max/Avg policies).
#[allow(clippy::too_many_arguments)]
pub fn train_or_load_pooled(
    train_spec: &DatasetSpec,
    scale: f64,
    pattern: Pattern,
    scenario_kind: &str,
    iterations: usize,
    seed: u64,
    no_cache: bool,
    pooling: TemporalPooling,
) -> PolicyOutcome {
    // The scenario is re-derived against the *training* graph size so
    // that the expected number of massive bursts matches the test
    // streams.
    let edges = train_spec.edges_scaled(scale).len();
    let scenario = scenario_by_kind(scenario_kind, edges);
    train_custom(
        train_spec,
        scale,
        pattern,
        scenario,
        scenario_kind,
        iterations,
        seed,
        no_cache,
        pooling,
    )
}

/// The fully explicit variant: trains (or loads) a policy for an
/// arbitrary scenario; `cache_tag` must uniquely describe the scenario
/// (it is part of the cache key).
#[allow(clippy::too_many_arguments)]
pub fn train_custom(
    train_spec: &DatasetSpec,
    scale: f64,
    pattern: Pattern,
    scenario: Scenario,
    cache_tag: &str,
    iterations: usize,
    seed: u64,
    no_cache: bool,
    pooling: TemporalPooling,
) -> PolicyOutcome {
    let key = format!(
        "{}-s{:.3}-{}-{}-it{}-seed{}-{}",
        sanitize(train_spec.name),
        scale,
        sanitize(&pattern.name()),
        sanitize(cache_tag),
        iterations,
        seed,
        pooling.name()
    );
    let dir = policy_cache_dir();
    let path = dir.join(format!("{key}.policy"));
    if !no_cache {
        if let Ok(policy) = wsd_rl::load_policy(&path) {
            if policy.dim() == pattern.num_edges() + 3 {
                return PolicyOutcome { policy, train_time: None };
            }
        }
    }
    let edges = train_spec.edges_scaled(scale);
    let capacity = train_capacity(edges.len(), pattern);
    let mut cfg = TrainerConfig::paper_defaults(pattern, capacity);
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg.pooling = pooling;
    let report = train(&edges, scenario, &cfg);
    std::fs::create_dir_all(&dir).ok();
    if let Err(e) = wsd_rl::save_policy(&path, &report.policy) {
        eprintln!("warning: could not cache policy at {}: {e}", path.display());
    }
    PolicyOutcome { policy: report.policy, train_time: Some(report.wall_time) }
}

/// The reservoir budget used in experiments: the paper's *relative*
/// sizing — its fixed M = 200 000 spans 0.07%–6.7% of its graphs; we use
/// the upper range (5%, ≈ its com-YT setting) because small absolute
/// samples at our scale otherwise drown the comparison in shot noise —
/// floored to stay meaningful on tiny `--quick` runs.
pub fn capacity_for(num_edges: usize, pattern: Pattern) -> usize {
    ((num_edges as f64 * 0.05) as usize).max(pattern.num_edges() + 20)
}

/// Training budget: same relative sizing against the training graph.
pub fn train_capacity(num_edges: usize, pattern: Pattern) -> usize {
    capacity_for(num_edges, pattern)
}

/// Maps a `--scenario` string to a [`Scenario`] scaled to a stream of
/// `num_edges` insertions.
pub fn scenario_by_kind(kind: &str, num_edges: usize) -> Scenario {
    match kind {
        "massive" => Scenario::default_massive(num_edges),
        "light" => Scenario::default_light(),
        "insert" => Scenario::InsertOnly,
        other => panic!("unknown scenario kind {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_has_floor_and_scales() {
        assert_eq!(capacity_for(100_000, Pattern::Triangle), 5000);
        assert!(capacity_for(10, Pattern::FourClique) >= 26);
    }

    #[test]
    fn scenario_mapping() {
        assert_eq!(scenario_by_kind("light", 10), Scenario::default_light());
        assert!(matches!(scenario_by_kind("massive", 100), Scenario::Massive { .. }));
        assert_eq!(scenario_by_kind("insert", 5), Scenario::InsertOnly);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics() {
        let _ = scenario_by_kind("nope", 1);
    }

    #[test]
    fn sanitize_strips_specials() {
        assert_eq!(sanitize("synthetic (train)"), "synthetic__train_");
        assert_eq!(sanitize("cit-PT"), "cit-PT");
    }

    #[test]
    fn train_or_load_roundtrip() {
        // Uses a tiny budget; exercises the cache write + read path.
        let spec = wsd_stream::dataset::by_name("cit-HE").unwrap();
        let first = train_or_load(&spec, 0.05, Pattern::Triangle, "insert", 5, 999, true);
        assert!(first.train_time.is_some());
        let second = train_or_load(&spec, 0.05, Pattern::Triangle, "insert", 5, 999, false);
        assert!(second.train_time.is_none(), "second call must hit the cache");
        assert_eq!(first.policy, second.policy);
    }
}
