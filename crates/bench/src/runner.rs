//! Experiment execution: build a workload once, run every algorithm over
//! it with repeated seeds, and aggregate ARE/MARE/runtime.
//!
//! All repetition grids run through the engine layer of `wsd-core`:
//! accuracy repetitions execute as an [`Ensemble`] (independently seeded
//! replicas on a thread pool, results slotted by replica index so output
//! never depends on scheduling), and every stream pass — including the
//! serial timing passes — ingests events in batches through a
//! [`BatchDriver`].

use crate::metrics::{are, mean_std, MareAccumulator};
use std::sync::Arc;
use std::time::Instant;
use wsd_core::engine::{BatchDriver, Ensemble};
use wsd_core::{Algorithm, LinearPolicy, SessionBuilder, StreamSession, TemporalPooling};
use wsd_graph::Pattern;
use wsd_stream::{EventStream, Scenario, TruthTimeline};

/// Minimum ground truth for a checkpoint to count towards MARE and for
/// the ARE evaluation point to be considered well-conditioned. Relative
/// errors against counts below this are dominated by integer shot noise
/// rather than estimator quality.
pub const MIN_TRUTH: f64 = 50.0;

/// A fully prepared workload: the stream, its exact timeline, and the
/// evaluation endpoint.
pub struct Workload {
    /// The event stream (possibly truncated to the evaluation endpoint).
    pub stream: Arc<EventStream>,
    /// Exact counts per event (same truncation).
    pub truth: Arc<Vec<f64>>,
    /// Pattern being counted.
    pub pattern: Pattern,
    /// Events between MARE checkpoints.
    pub stride: usize,
    /// MARE conditioning floor: checkpoints below this exact count are
    /// skipped (`max(MIN_TRUTH, 1% of the peak)`).
    pub mare_floor: f64,
}

impl Workload {
    /// Builds a workload from an ordered edge list and a scenario.
    ///
    /// The stream is truncated at the last event where the exact count is
    /// still ≥ `max(MIN_TRUTH, 5% of its running peak)`. Rationale: under
    /// our scaled-down massive scenario a deletion burst near the stream
    /// end can leave only double-digit exact counts, where *relative*
    /// error measures integer shot noise rather than estimator quality —
    /// the paper's 10⁶× larger streams leave millions of instances even
    /// after a burst, so its end-of-stream ARE is naturally
    /// well-conditioned. The 5% rule keeps every *mid-stream* burst (and
    /// the recovery from it) inside the evaluated prefix while pinning
    /// the measurement to a statistically meaningful endpoint. All
    /// algorithms see the identical truncated stream, so comparisons are
    /// unaffected. Light-deletion and insertion-only workloads are
    /// essentially never truncated.
    pub fn build(
        edges: &[wsd_graph::Edge],
        scenario: Scenario,
        pattern: Pattern,
        scenario_seed: u64,
    ) -> Self {
        let mut stream = scenario.apply(edges, scenario_seed);
        let timeline = TruthTimeline::compute(pattern, &stream);
        let peak = timeline.series().iter().copied().max().unwrap_or(0) as f64;
        assert!(
            peak >= MIN_TRUTH,
            "workload is degenerate: peak exact count {peak} for {}",
            pattern.name()
        );
        let floor = (0.05 * peak).max(MIN_TRUTH);
        let eval_at = timeline
            .series()
            .iter()
            .rposition(|&c| c as f64 >= floor)
            .expect("peak above threshold implies a valid endpoint");
        stream.truncate(eval_at + 1);
        let truth: Vec<f64> = timeline.series()[..=eval_at].iter().map(|&c| c as f64).collect();
        let stride = (stream.len() / 200).max(1);
        Self {
            stream: Arc::new(stream),
            truth: Arc::new(truth),
            pattern,
            stride,
            mare_floor: (0.01 * peak).max(MIN_TRUTH),
        }
    }

    /// Ground truth at the evaluation endpoint.
    pub fn final_truth(&self) -> f64 {
        *self.truth.last().expect("non-empty workload")
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// True if there are no events (never for built workloads).
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

/// Per-repetition accuracy result.
#[derive(Copy, Clone, Debug)]
pub struct RunResult {
    /// Absolute relative error at the evaluation endpoint.
    pub are: f64,
    /// Mean absolute relative error over checkpoints.
    pub mare: f64,
}

/// Aggregated accuracy + timing for one algorithm on one workload.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Mean ARE over repetitions.
    pub are: f64,
    /// Sample std of ARE.
    pub are_std: f64,
    /// Mean MARE over repetitions.
    pub mare: f64,
    /// Mean wall-clock seconds for one full pass (timing reps).
    pub seconds: f64,
}

/// How to construct counters for one algorithm column.
#[derive(Clone)]
pub struct AlgoSpec {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Policy for WSD-L.
    pub policy: Option<LinearPolicy>,
    /// Pooling variant (Table XIII).
    pub pooling: TemporalPooling,
    /// Optional display-name override.
    pub label: Option<String>,
}

impl AlgoSpec {
    /// Plain spec for an algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        Self { algorithm, policy: None, pooling: TemporalPooling::Max, label: None }
    }

    /// WSD-L with a trained policy.
    pub fn wsd_l(policy: LinearPolicy) -> Self {
        Self {
            algorithm: Algorithm::WsdL,
            policy: Some(policy),
            pooling: TemporalPooling::Max,
            label: None,
        }
    }

    /// Column label.
    pub fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.algorithm.name().to_string())
    }

    /// Builds a single-query session for this column (bit-identical to
    /// the historical per-pattern counters).
    pub fn session(&self, pattern: Pattern, capacity: usize, seed: u64) -> StreamSession {
        self.session_multi(&[pattern], capacity, seed)
    }

    /// Builds one shared-sampler session answering several patterns at
    /// once (the weight pattern is the first query's).
    pub fn session_multi(&self, patterns: &[Pattern], capacity: usize, seed: u64) -> StreamSession {
        let mut b = SessionBuilder::new(self.algorithm, capacity, seed)
            .queries(patterns.iter().copied())
            .with_pooling(self.pooling);
        if let Some(p) = &self.policy {
            b = b.with_policy(p.clone());
        }
        b.build()
    }
}

/// Runs one accuracy repetition: ingests the stream in batches of the
/// workload's checkpoint stride, sampling MARE at every batch boundary.
///
/// Checkpoint positions are the historical per-event protocol's — event
/// indices `0, stride, 2·stride, …` plus the final event — obtained by
/// processing the first event as its own batch, so MARE columns stay
/// comparable across the engine refactor.
pub fn run_once(spec: &AlgoSpec, w: &Workload, capacity: usize, seed: u64) -> RunResult {
    let mut session = spec.session(w.pattern, capacity, seed);
    let (qid, _) = session.queries().next().expect("single-query session");
    let mut mare = MareAccumulator::new(w.mare_floor);
    let truth = &w.truth;
    if let Some(head) = w.stream.get(..1) {
        session.process_batch(head);
        mare.record(session.estimate(qid), truth[0]);
        BatchDriver::with_batch_size(w.stride).run_session_with_checkpoints(
            &mut session,
            &w.stream[1..],
            &mut |consumed, session| {
                // `consumed` counts tail events; the last processed
                // absolute event index is exactly `consumed`.
                mare.record(session.estimate(qid), truth[consumed]);
            },
        );
    }
    RunResult { are: are(session.estimate(qid), w.final_truth()), mare: mare.value() }
}

/// Runs `reps` accuracy repetitions as an engine ensemble (seed `i` is
/// `replica_seed(base_seed, i)`, results in replica order regardless of
/// threading) and `time_reps` serial batched timing passes.
pub fn run_cell(
    spec: &AlgoSpec,
    w: &Workload,
    capacity: usize,
    base_seed: u64,
    reps: usize,
    time_reps: usize,
) -> CellResult {
    // `reps == 0` is a timing-only cell: skip the accuracy ensemble
    // (mean_std of an empty slice is (0, 0)).
    let results: Vec<RunResult> = if reps == 0 {
        Vec::new()
    } else {
        Ensemble::new(reps).with_base_seed(base_seed).map(|seed| run_once(spec, w, capacity, seed))
    };
    let (are, are_std) = mean_std(&results.iter().map(|r| r.are).collect::<Vec<_>>());
    let (mare, _) = mean_std(&results.iter().map(|r| r.mare).collect::<Vec<_>>());
    // Timing: serial full passes without checkpoint bookkeeping.
    let driver = BatchDriver::new();
    let mut times = Vec::with_capacity(time_reps);
    for r in 0..time_reps {
        let mut session =
            spec.session(w.pattern, capacity, base_seed.wrapping_add(7000 + r as u64));
        let (qid, _) = session.queries().next().expect("single-query session");
        let start = Instant::now();
        driver.run_session(&mut session, &w.stream);
        times.push(start.elapsed().as_secs_f64());
        std::hint::black_box(session.estimate(qid));
    }
    let (seconds, _) = mean_std(&times);
    CellResult { are, are_std, mare, seconds }
}

/// Runs a whole algorithm row through the engine: one [`CellResult`] per
/// spec, each cell's repetitions executing as a parallel ensemble. The
/// drivers behind the paper's comparison tables iterate (datasets ×
/// algorithms × seeds) through this single entry point.
pub fn run_grid(
    specs: &[AlgoSpec],
    w: &Workload,
    capacity: usize,
    base_seed: u64,
    reps: usize,
    time_reps: usize,
) -> Vec<CellResult> {
    specs
        .iter()
        .map(|spec| {
            eprintln!("  running {} ({} events, M = {capacity})…", spec.label(), w.len());
            run_cell(spec, w, capacity, base_seed, reps, time_reps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_stream::gen::GeneratorConfig;

    fn edges() -> Vec<wsd_graph::Edge> {
        GeneratorConfig::HolmeKim { vertices: 150, edges_per_vertex: 4, triad_prob: 0.5 }
            .generate(8)
    }

    #[test]
    fn workload_truncates_to_conditioned_endpoint() {
        let w = Workload::build(
            &edges(),
            Scenario::Massive { alpha: 0.02, beta_m: 0.9 },
            Pattern::Triangle,
            3,
        );
        assert!(w.final_truth() >= MIN_TRUTH);
        assert!(!w.is_empty());
        assert_eq!(w.stream.len(), w.truth.len());
    }

    #[test]
    fn run_once_exact_with_huge_capacity() {
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let r = run_once(&AlgoSpec::new(Algorithm::WsdH), &w, 10_000, 1);
        assert_eq!(r.are, 0.0);
        assert_eq!(r.mare, 0.0);
    }

    #[test]
    fn run_cell_aggregates() {
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let cell = run_cell(&AlgoSpec::new(Algorithm::ThinkD), &w, 120, 1, 6, 1);
        assert!(cell.are >= 0.0);
        assert!(cell.mare > 0.0, "a bounded sample must have some error");
        assert!(cell.seconds > 0.0);
        assert!(cell.are_std >= 0.0);
    }

    #[test]
    fn parallel_and_serial_reps_agree() {
        // Same seeds → same per-rep results regardless of threading.
        // The ensemble derives replica seeds via the splitmix bijection,
        // so the serial reference must too.
        use wsd_core::engine::replica_seed;
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let spec = AlgoSpec::new(Algorithm::WsdH);
        let serial: Vec<RunResult> =
            (0..4).map(|r| run_once(&spec, &w, 100, replica_seed(50, r))).collect();
        let cell = run_cell(&spec, &w, 100, 50, 4, 1);
        let mean_serial = serial.iter().map(|r| r.are).sum::<f64>() / 4.0;
        assert!((cell.are - mean_serial).abs() < 1e-12);
    }
}
