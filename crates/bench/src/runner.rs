//! Experiment execution: build a workload once, run every algorithm over
//! it with repeated seeds (parallel across threads for accuracy, serial
//! for timing), and aggregate ARE/MARE/runtime.

use crate::metrics::{are, mean_std, MareAccumulator};
use std::sync::Arc;
use std::time::Instant;
use wsd_core::{Algorithm, CounterConfig, LinearPolicy, SubgraphCounter, TemporalPooling};
use wsd_graph::Pattern;
use wsd_stream::{EventStream, Scenario, TruthTimeline};

/// Minimum ground truth for a checkpoint to count towards MARE and for
/// the ARE evaluation point to be considered well-conditioned. Relative
/// errors against counts below this are dominated by integer shot noise
/// rather than estimator quality.
pub const MIN_TRUTH: f64 = 50.0;

/// A fully prepared workload: the stream, its exact timeline, and the
/// evaluation endpoint.
pub struct Workload {
    /// The event stream (possibly truncated to the evaluation endpoint).
    pub stream: Arc<EventStream>,
    /// Exact counts per event (same truncation).
    pub truth: Arc<Vec<f64>>,
    /// Pattern being counted.
    pub pattern: Pattern,
    /// Events between MARE checkpoints.
    pub stride: usize,
    /// MARE conditioning floor: checkpoints below this exact count are
    /// skipped (`max(MIN_TRUTH, 1% of the peak)`).
    pub mare_floor: f64,
}

impl Workload {
    /// Builds a workload from an ordered edge list and a scenario.
    ///
    /// The stream is truncated at the last event where the exact count is
    /// still ≥ `max(MIN_TRUTH, 5% of its running peak)`. Rationale: under
    /// our scaled-down massive scenario a deletion burst near the stream
    /// end can leave only double-digit exact counts, where *relative*
    /// error measures integer shot noise rather than estimator quality —
    /// the paper's 10⁶× larger streams leave millions of instances even
    /// after a burst, so its end-of-stream ARE is naturally
    /// well-conditioned. The 5% rule keeps every *mid-stream* burst (and
    /// the recovery from it) inside the evaluated prefix while pinning
    /// the measurement to a statistically meaningful endpoint. All
    /// algorithms see the identical truncated stream, so comparisons are
    /// unaffected. Light-deletion and insertion-only workloads are
    /// essentially never truncated.
    pub fn build(
        edges: &[wsd_graph::Edge],
        scenario: Scenario,
        pattern: Pattern,
        scenario_seed: u64,
    ) -> Self {
        let mut stream = scenario.apply(edges, scenario_seed);
        let timeline = TruthTimeline::compute(pattern, &stream);
        let peak = timeline.series().iter().copied().max().unwrap_or(0) as f64;
        assert!(
            peak >= MIN_TRUTH,
            "workload is degenerate: peak exact count {peak} for {}",
            pattern.name()
        );
        let floor = (0.05 * peak).max(MIN_TRUTH);
        let eval_at = timeline
            .series()
            .iter()
            .rposition(|&c| c as f64 >= floor)
            .expect("peak above threshold implies a valid endpoint");
        stream.truncate(eval_at + 1);
        let truth: Vec<f64> =
            timeline.series()[..=eval_at].iter().map(|&c| c as f64).collect();
        let stride = (stream.len() / 200).max(1);
        Self {
            stream: Arc::new(stream),
            truth: Arc::new(truth),
            pattern,
            stride,
            mare_floor: (0.01 * peak).max(MIN_TRUTH),
        }
    }

    /// Ground truth at the evaluation endpoint.
    pub fn final_truth(&self) -> f64 {
        *self.truth.last().expect("non-empty workload")
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// True if there are no events (never for built workloads).
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

/// Per-repetition accuracy result.
#[derive(Copy, Clone, Debug)]
pub struct RunResult {
    /// Absolute relative error at the evaluation endpoint.
    pub are: f64,
    /// Mean absolute relative error over checkpoints.
    pub mare: f64,
}

/// Aggregated accuracy + timing for one algorithm on one workload.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Mean ARE over repetitions.
    pub are: f64,
    /// Sample std of ARE.
    pub are_std: f64,
    /// Mean MARE over repetitions.
    pub mare: f64,
    /// Mean wall-clock seconds for one full pass (timing reps).
    pub seconds: f64,
}

/// How to construct counters for one algorithm column.
#[derive(Clone)]
pub struct AlgoSpec {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Policy for WSD-L.
    pub policy: Option<LinearPolicy>,
    /// Pooling variant (Table XIII).
    pub pooling: TemporalPooling,
    /// Optional display-name override.
    pub label: Option<String>,
}

impl AlgoSpec {
    /// Plain spec for an algorithm.
    pub fn new(algorithm: Algorithm) -> Self {
        Self { algorithm, policy: None, pooling: TemporalPooling::Max, label: None }
    }

    /// WSD-L with a trained policy.
    pub fn wsd_l(policy: LinearPolicy) -> Self {
        Self {
            algorithm: Algorithm::WsdL,
            policy: Some(policy),
            pooling: TemporalPooling::Max,
            label: None,
        }
    }

    /// Column label.
    pub fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.algorithm.name().to_string())
    }

    fn build(&self, pattern: Pattern, capacity: usize, seed: u64) -> Box<dyn SubgraphCounter> {
        let mut cfg = CounterConfig::new(pattern, capacity, seed).with_pooling(self.pooling);
        if let Some(p) = &self.policy {
            cfg = cfg.with_policy(p.clone());
        }
        cfg.build(self.algorithm)
    }
}

/// Runs one accuracy repetition: processes the stream, sampling MARE at
/// the workload's checkpoint stride.
pub fn run_once(spec: &AlgoSpec, w: &Workload, capacity: usize, seed: u64) -> RunResult {
    let mut counter = spec.build(w.pattern, capacity, seed);
    let mut mare = MareAccumulator::new(w.mare_floor);
    for (i, &ev) in w.stream.iter().enumerate() {
        counter.process(ev);
        if i % w.stride == 0 || i + 1 == w.stream.len() {
            mare.record(counter.estimate(), w.truth[i]);
        }
    }
    RunResult {
        are: are(counter.estimate(), w.final_truth()),
        mare: mare.value(),
    }
}

/// Runs `reps` accuracy repetitions (parallel over available threads)
/// and `time_reps` serial timing passes.
pub fn run_cell(
    spec: &AlgoSpec,
    w: &Workload,
    capacity: usize,
    base_seed: u64,
    reps: usize,
    time_reps: usize,
) -> CellResult {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let results: Vec<RunResult> = if threads <= 1 || reps <= 1 {
        (0..reps)
            .map(|r| run_once(spec, w, capacity, base_seed.wrapping_add(r as u64)))
            .collect()
    } else {
        let mut out: Vec<Option<RunResult>> = vec![None; reps];
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in out.chunks_mut(reps.div_ceil(threads)).enumerate() {
                let spec = &*spec;
                let w = &*w;
                scope.spawn(move || {
                    let start = chunk_idx * reps.div_ceil(threads);
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let seed = base_seed.wrapping_add((start + i) as u64);
                        *slot = Some(run_once(spec, w, capacity, seed));
                    }
                });
            }
        });
        out.into_iter().map(|r| r.expect("all repetitions filled")).collect()
    };
    let (are, are_std) = mean_std(&results.iter().map(|r| r.are).collect::<Vec<_>>());
    let (mare, _) = mean_std(&results.iter().map(|r| r.mare).collect::<Vec<_>>());
    // Timing: serial full passes without checkpoint bookkeeping.
    let mut times = Vec::with_capacity(time_reps);
    for r in 0..time_reps {
        let mut counter = spec.build(w.pattern, capacity, base_seed.wrapping_add(7000 + r as u64));
        let start = Instant::now();
        counter.process_all(&w.stream);
        times.push(start.elapsed().as_secs_f64());
        std::hint::black_box(counter.estimate());
    }
    let (seconds, _) = mean_std(&times);
    CellResult { are, are_std, mare, seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsd_stream::gen::GeneratorConfig;

    fn edges() -> Vec<wsd_graph::Edge> {
        GeneratorConfig::HolmeKim { vertices: 150, edges_per_vertex: 4, triad_prob: 0.5 }
            .generate(8)
    }

    #[test]
    fn workload_truncates_to_conditioned_endpoint() {
        let w = Workload::build(
            &edges(),
            Scenario::Massive { alpha: 0.02, beta_m: 0.9 },
            Pattern::Triangle,
            3,
        );
        assert!(w.final_truth() >= MIN_TRUTH);
        assert!(!w.is_empty());
        assert_eq!(w.stream.len(), w.truth.len());
    }

    #[test]
    fn run_once_exact_with_huge_capacity() {
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let r = run_once(&AlgoSpec::new(Algorithm::WsdH), &w, 10_000, 1);
        assert_eq!(r.are, 0.0);
        assert_eq!(r.mare, 0.0);
    }

    #[test]
    fn run_cell_aggregates() {
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let cell = run_cell(&AlgoSpec::new(Algorithm::ThinkD), &w, 120, 1, 6, 1);
        assert!(cell.are >= 0.0);
        assert!(cell.mare > 0.0, "a bounded sample must have some error");
        assert!(cell.seconds > 0.0);
        assert!(cell.are_std >= 0.0);
    }

    #[test]
    fn parallel_and_serial_reps_agree() {
        // Same seeds → same per-rep results regardless of threading.
        let w = Workload::build(&edges(), Scenario::default_light(), Pattern::Triangle, 3);
        let spec = AlgoSpec::new(Algorithm::WsdH);
        let serial: Vec<RunResult> =
            (0..4).map(|r| run_once(&spec, &w, 100, 50 + r)).collect();
        let cell = run_cell(&spec, &w, 100, 50, 4, 1);
        let mean_serial = serial.iter().map(|r| r.are).sum::<f64>() / 4.0;
        assert!((cell.are - mean_serial).abs() < 1e-12);
    }
}
