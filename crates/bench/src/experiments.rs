//! Shared experiment drivers behind the table/figure binaries.

use crate::args::Args;
use crate::policies::{capacity_for, scenario_by_kind, train_or_load, train_or_load_pooled};
use crate::runner::{run_cell, run_grid, AlgoSpec, Workload};
use crate::table::{pct, secs, Table};
use wsd_core::{Algorithm, TemporalPooling};
use wsd_graph::Pattern;
use wsd_stream::dataset::{registry, DatasetPair};

/// Datasets (by test-graph name) excluded from the 4-clique tables —
/// matching the paper, whose Tables VII/X omit soc-TW (the densest
/// graph) for cost reasons.
pub const FOUR_CLIQUE_EXCLUDES: &[&str] = &["soc-TW"];

/// The six-algorithm comparison of Tables II/III/VII (massive) and
/// VIII/IX/X (light): ARE, MARE and running time per dataset.
pub fn comparison_table(pattern: Pattern, args: &Args) -> Table {
    let pairs: Vec<DatasetPair> = registry()
        .into_iter()
        .filter(|p| pattern != Pattern::FourClique || !FOUR_CLIQUE_EXCLUDES.contains(&p.test.name))
        .collect();
    let mut header = vec!["Graph".to_string()];
    header.extend(Algorithm::paper_table_set().iter().map(|a| a.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut cells: Vec<Vec<crate::runner::CellResult>> = Vec::new();
    let mut names = Vec::new();
    for pair in &pairs {
        eprintln!("[{}] preparing workload…", pair.test.name);
        let edges = pair.test.edges_scaled(args.scale);
        let scenario = scenario_by_kind(&args.scenario, edges.len());
        let workload = Workload::build(&edges, scenario, pattern, args.seed);
        let capacity = capacity_for(edges.len(), pattern);
        let policy = train_or_load(
            &pair.train,
            args.scale,
            pattern,
            &args.scenario,
            args.train_iters,
            args.seed,
            args.no_cache,
        )
        .policy;
        // The whole algorithm row goes through the engine grid: each
        // cell's repetitions run as a parallel ensemble of seeded
        // replicas over the shared workload.
        let specs: Vec<AlgoSpec> = Algorithm::paper_table_set()
            .into_iter()
            .map(|alg| match alg {
                Algorithm::WsdL => AlgoSpec::wsd_l(policy.clone()),
                other => AlgoSpec::new(other),
            })
            .collect();
        eprintln!("[{}] running {} algorithms…", pair.test.name, specs.len());
        let row = run_grid(&specs, &workload, capacity, args.seed, args.reps, args.time_reps);
        cells.push(row);
        names.push(pair.test.name.to_string());
    }
    for (title, f) in [
        ("Absolute Relative Error (%)", 0usize),
        ("Mean Absolute Relative Error (%)", 1),
        ("Running Time (s)", 2),
    ] {
        table.section(title);
        for (name, row) in names.iter().zip(&cells) {
            let mut out = vec![name.clone()];
            for cell in row {
                out.push(match f {
                    0 => pct(cell.are),
                    1 => pct(cell.mare),
                    _ => secs(cell.seconds),
                });
            }
            table.row(out);
        }
    }
    table
}

/// Tables IV/XI: WSD-L training time for triangles (△) and wedges (∧)
/// on the four real training graphs, under the selected scenario.
/// The paper reports hours on multi-million-edge graphs; at this scale
/// the same protocol completes in seconds — the *ratios* across datasets
/// and patterns are the comparable signal.
pub fn training_time_table(args: &Args) -> Table {
    let pairs: Vec<DatasetPair> =
        registry().into_iter().filter(|p| p.test.name != "synthetic").collect();
    let mut header = vec!["Pattern H".to_string()];
    header.extend(pairs.iter().map(|p| p.train.name.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    table.section(&format!("Training time (s), {} deletion scenario", args.scenario));
    for (label, pattern) in [("triangle", Pattern::Triangle), ("wedge", Pattern::Wedge)] {
        let mut row = vec![label.to_string()];
        for pair in &pairs {
            eprintln!("training {} on {}…", label, pair.train.name);
            // Timing a cached policy would be meaningless: force training.
            let outcome = train_or_load(
                &pair.train,
                args.scale,
                pattern,
                &args.scenario,
                args.train_iters,
                args.seed,
                true,
            );
            row.push(secs(outcome.train_time.expect("forced training").as_secs_f64()));
        }
        table.row(row);
    }
    table
}

/// Tables V/XII: transferability — policies trained on each training
/// graph, evaluated (triangle ARE, %) on every test graph, with WSD-H as
/// the heuristic reference column.
pub fn transfer_table(args: &Args) -> Table {
    let pattern = Pattern::Triangle;
    let pairs = registry();
    let train_specs: Vec<_> = pairs.iter().map(|p| p.train).collect();
    let test_specs: Vec<_> =
        pairs.iter().filter(|p| p.test.name != "synthetic").map(|p| p.test).collect();
    let mut header = vec!["(Training)".to_string()];
    header.extend(train_specs.iter().map(|s| s.name.to_string()));
    header.push("WSD-H".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    table.section(&format!("Triangle ARE (%), {} deletion scenario", args.scenario));
    let policies: Vec<_> = train_specs
        .iter()
        .map(|spec| {
            eprintln!("training policy on {}…", spec.name);
            train_or_load(
                spec,
                args.scale,
                pattern,
                &args.scenario,
                args.train_iters,
                args.seed,
                args.no_cache,
            )
            .policy
        })
        .collect();
    for test in &test_specs {
        let edges = test.edges_scaled(args.scale);
        let scenario = scenario_by_kind(&args.scenario, edges.len());
        let workload = Workload::build(&edges, scenario, pattern, args.seed);
        let capacity = capacity_for(edges.len(), pattern);
        let mut row = vec![test.name.to_string()];
        for (spec, policy) in train_specs.iter().zip(&policies) {
            eprintln!("evaluating {} policy on {}…", spec.name, test.name);
            let cell = run_cell(
                &AlgoSpec::wsd_l(policy.clone()),
                &workload,
                capacity,
                args.seed,
                args.reps,
                0,
            );
            row.push(pct(cell.are));
        }
        let cell =
            run_cell(&AlgoSpec::new(Algorithm::WsdH), &workload, capacity, args.seed, args.reps, 0);
        row.push(pct(cell.are));
        table.row(row);
    }
    table
}

/// Table XIII: ablation of the temporal pooling in Eq. (20) — WSD-L with
/// `max` (paper) vs `avg`, with WSD-H as reference, triangle ARE on the
/// four real test graphs under both scenarios.
pub fn ablation_table(args: &Args) -> Table {
    let pattern = Pattern::Triangle;
    let mut table = Table::new(&["Graph", "WSD-L (Max)", "WSD-L (Avg)", "WSD-H"]);
    for scenario_kind in ["massive", "light"] {
        table.section(&format!("Triangle ARE (%), {scenario_kind} deletion scenario"));
        for pair in registry().into_iter().filter(|p| p.test.name != "synthetic") {
            let edges = pair.test.edges_scaled(args.scale);
            let scenario = scenario_by_kind(scenario_kind, edges.len());
            let workload = Workload::build(&edges, scenario, pattern, args.seed);
            let capacity = capacity_for(edges.len(), pattern);
            let mut row = vec![pair.test.name.to_string()];
            for pooling in [TemporalPooling::Max, TemporalPooling::Avg] {
                eprintln!("[{}] WSD-L ({}) under {scenario_kind}…", pair.test.name, pooling.name());
                let policy = train_or_load_pooled(
                    &pair.train,
                    args.scale,
                    pattern,
                    scenario_kind,
                    args.train_iters,
                    args.seed,
                    args.no_cache,
                    pooling,
                )
                .policy;
                let mut spec = AlgoSpec::wsd_l(policy);
                spec.pooling = pooling;
                spec.label = Some(format!("WSD-L ({})", pooling.name()));
                let cell = run_cell(&spec, &workload, capacity, args.seed, args.reps, 0);
                row.push(pct(cell.are));
            }
            let cell = run_cell(
                &AlgoSpec::new(Algorithm::WsdH),
                &workload,
                capacity,
                args.seed,
                args.reps,
                0,
            );
            row.push(pct(cell.are));
            table.row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_clique_excludes_match_paper() {
        assert_eq!(FOUR_CLIQUE_EXCLUDES, &["soc-TW"]);
    }

    /// End-to-end smoke: a micro comparison table with tiny sizes.
    /// This is the same code path as Tables II/III/VII–X.
    #[test]
    fn comparison_table_smoke() {
        let args = Args {
            reps: 2,
            time_reps: 1,
            scale: 0.04,
            train_iters: 5,
            scenario: "light".into(),
            no_cache: true,
            ..Default::default()
        };
        let t = comparison_table(Pattern::Triangle, &args);
        let rendered = t.render();
        assert!(rendered.contains("WSD-L"));
        assert!(rendered.contains("cit-PT"));
        assert!(rendered.contains("[ Running Time (s) ]"));
    }
}
