//! # wsd-bench
//!
//! The evaluation harness that regenerates every table and figure of the
//! WSD paper (§V). Each experiment is a binary under `src/bin/` — one
//! per table/figure, named after it (`table2`, `fig2a`, …) — built on
//! the shared machinery here:
//!
//! * [`args`] — the common CLI surface (`--reps`, `--scale`, `--quick`…).
//! * [`metrics`] — ARE / MARE (§V-A).
//! * [`runner`] — workload construction (stream + exact timeline) and
//!   repeated, thread-parallel accuracy runs plus serial timing runs.
//! * [`policies`] — train-or-load cache for WSD-L policies (Table I
//!   train/test pairing).
//! * [`experiments`] — the drivers shared by several tables.
//! * [`table`] — paper-style sectioned table rendering + CSV export.
//!
//! Criterion micro-benchmarks live under `benches/`: per-event sampler
//! throughput, reservoir operations, pattern-enumeration kernels,
//! generators and RL primitives.
//!
//! See EXPERIMENTS.md at the workspace root for the experiment ↔ binary
//! index and recorded results.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod experiments;
pub mod metrics;
pub mod policies;
pub mod runner;
pub mod table;

pub use args::Args;
pub use runner::{run_cell, run_once, AlgoSpec, CellResult, Workload};
pub use table::Table;
