//! The paper's evaluation metrics (§V-A): Absolute Relative Error (ARE)
//! and Mean Absolute Relative Error (MARE).

/// `ARE = |X̂ − X| / X × 100%` (reported here as a fraction, formatted
/// as % by the table printer).
pub fn are(estimate: f64, truth: f64) -> f64 {
    debug_assert!(truth > 0.0, "ARE needs a positive ground truth");
    (estimate - truth).abs() / truth
}

/// Streaming MARE accumulator: `1/T Σ_t |X̂_t − X_t| / X_t`.
///
/// Checkpoints with a ground truth below `min_truth` are skipped — the
/// relative error is undefined at 0 and numerically meaningless for
/// single-digit counts at stream start (the paper's plots likewise only
/// become meaningful once counts are non-trivial).
#[derive(Clone, Debug)]
pub struct MareAccumulator {
    min_truth: f64,
    sum: f64,
    n: usize,
}

impl MareAccumulator {
    /// Creates an accumulator skipping checkpoints with truth below
    /// `min_truth`.
    pub fn new(min_truth: f64) -> Self {
        Self { min_truth, sum: 0.0, n: 0 }
    }

    /// Records one checkpoint.
    pub fn record(&mut self, estimate: f64, truth: f64) {
        if truth >= self.min_truth {
            self.sum += (estimate - truth).abs() / truth;
            self.n += 1;
        }
    }

    /// Number of counted checkpoints.
    pub fn checkpoints(&self) -> usize {
        self.n
    }

    /// The mean absolute relative error (0 if nothing was counted).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Mean and sample standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn are_formula() {
        assert_eq!(are(110.0, 100.0), 0.1);
        assert_eq!(are(90.0, 100.0), 0.1);
        assert_eq!(are(100.0, 100.0), 0.0);
    }

    #[test]
    fn mare_skips_small_truth() {
        let mut m = MareAccumulator::new(10.0);
        m.record(5.0, 1.0); // skipped
        m.record(110.0, 100.0);
        m.record(80.0, 100.0);
        assert_eq!(m.checkpoints(), 2);
        assert!((m.value() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn mare_empty_is_zero() {
        let m = MareAccumulator::new(1.0);
        assert_eq!(m.value(), 0.0);
        assert_eq!(m.checkpoints(), 0);
    }

    #[test]
    fn mean_std_values() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]), (5.0, 0.0));
    }
}
