use wsd_graph::{Adjacency, Pattern};
use wsd_stream::gen::GeneratorConfig;
fn tri(cfg: GeneratorConfig, name: &str) {
    let edges = cfg.generate(1);
    let mut g = Adjacency::new();
    for e in &edges {
        g.insert(*e);
    }
    let t = wsd_graph::exact::count_static(Pattern::Triangle, &g);
    println!("{name}: |E|={} T={} T/E={:.1}", edges.len(), t, t as f64 / edges.len() as f64);
}
fn main() {
    tri(
        GeneratorConfig::HolmeKim { vertices: 8000, edges_per_vertex: 8, triad_prob: 0.35 },
        "HK m8 t.35 n8k (cit now)",
    );
    tri(
        GeneratorConfig::HolmeKim { vertices: 12000, edges_per_vertex: 10, triad_prob: 0.6 },
        "HK m10 t.6 n12k",
    );
    tri(
        GeneratorConfig::HolmeKim { vertices: 10000, edges_per_vertex: 8, triad_prob: 0.7 },
        "HK m8 t.7 n10k (soc now)",
    );
    tri(
        GeneratorConfig::HolmeKim { vertices: 12000, edges_per_vertex: 12, triad_prob: 0.85 },
        "HK m12 t.85 n12k",
    );
    tri(
        GeneratorConfig::Community {
            vertices: 12000,
            intra_links: 5,
            inter_links: 1,
            new_community_prob: 0.012,
        },
        "COM i5 n12k (now)",
    );
    tri(
        GeneratorConfig::Community {
            vertices: 12000,
            intra_links: 8,
            inter_links: 1,
            new_community_prob: 0.006,
        },
        "COM i8 ncp.006 n12k",
    );
    tri(
        GeneratorConfig::Copying { vertices: 8000, out_degree: 8, copy_prob: 0.6 },
        "COPY d8 c.6 n8k (now)",
    );
    tri(
        GeneratorConfig::Copying { vertices: 10000, out_degree: 10, copy_prob: 0.8 },
        "COPY d10 c.8 n10k",
    );
    tri(GeneratorConfig::ForestFire { vertices: 10000, forward_prob: 0.5 }, "FF p.5 n10k (now)");
}
