//! Train a WSD-L weight policy with DDPG (paper §IV), freeze it as a
//! registry artifact, serve it from a session, and hot-swap it into a
//! running heuristic session mid-stream — the full policy lifecycle
//! through the public API. The `wsd-train` binary drives the same
//! `train_cell` path across the whole scenario grid.
//!
//! ```sh
//! cargo run --release --example train_policy
//! ```

use wsd::prelude::*;

fn main() {
    // Train one cell of the scenario grid: the ba-light triangle cell,
    // at the paper's 1000-iteration budget. The training graph is a
    // *smaller* BA graph than the held-out stream below (the paper
    // trains on the smaller graph of the same category, Table I), and
    // the artifact is a pure function of (master seed, iterations,
    // cell) — `wsd-train --threads N` freezes these exact bytes.
    let cell = full_grid()
        .into_iter()
        .find(|c| c.key() == "ba-light:triangle")
        .expect("the grid has a ba-light triangle cell");
    println!("training WSD-L for {}…", cell.key());
    let (artifact, report) = train_cell(cell, 0xDD_96, 1000);
    println!(
        "trained in {:.2?} ({} optimiser steps over {} transitions, {} episodes)",
        report.wall_time, report.optimizer_steps, report.transitions, report.episodes
    );

    // Freeze + reload through the registry (the paper "hardcodes θ"; we
    // check versioned, checksummed artifacts into `artifacts/policies`
    // — this demo uses a temp directory).
    let dir = std::env::temp_dir().join("wsd-demo-policies");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    artifact.save(dir.join(artifact.file_name())).expect("artifact serialises");
    let registry = PolicyRegistry::open(&dir).expect("registry opens");
    assert!(registry.rejected().is_empty(), "no corrupt artifacts");
    let loaded = registry
        .lookup(Pattern::Triangle, "ba-light")
        .expect("the artifact we just saved is served back");
    assert_eq!(loaded.policy, artifact.policy);
    println!("artifact frozen to {} and served from the registry", dir.display());

    // Held-out evaluation: a larger graph of the same family under the
    // light-deletion scenario, generation seed disjoint from training.
    let test_edges =
        GeneratorConfig::BarabasiAlbert { vertices: 1_200, edges_per_vertex: 5 }.generate(7);
    let events = Scenario::default_light().apply(&test_edges, 3);
    let truth = ExactCounter::count_stream(Pattern::Triangle, events.iter().copied())
        .expect("feasible stream") as f64;
    let capacity = events.len() / 5;

    // The paper's repeated-runs protocol: 8 independently seeded
    // replicas per algorithm, identical seeds for both, equal capacity.
    let policy = loaded.policy.clone();
    let ensemble_err = |alg: Algorithm, policy: Option<LinearPolicy>| -> f64 {
        let report = Ensemble::new(8).with_base_seed(1000).run_sessions(&events, |seed| {
            let mut b = SessionBuilder::new(alg, capacity, seed).query(Pattern::Triangle);
            if let Some(p) = policy.clone() {
                b = b.with_policy(p);
            }
            b.build()
        });
        (report.queries[0].1.mean - truth).abs() / truth
    };
    let l = ensemble_err(Algorithm::WsdL, Some(policy.clone()));
    let h = ensemble_err(Algorithm::WsdH, None);
    println!("\nheld-out triangle rel-err of the 8-replica ensemble mean (truth {truth}):");
    println!("  WSD-L (learned)  : {:.2}%", l * 100.0);
    println!("  WSD-H (heuristic): {:.2}%", h * 100.0);
    println!(
        "learned policy is {:.0}% {} than the heuristic on this stream",
        (1.0 - l / h).abs() * 100.0,
        if l <= h { "better" } else { "worse" }
    );

    // Hot-swap: a running heuristic session upgrades to the learned
    // policy mid-stream without losing its reservoir — stored edges
    // keep their admission-time weights, only future observations use
    // the new surface. (`wsd-serve` exposes the same swap over the
    // wire as the `SwapPolicy` request.)
    let (head, tail) = events.split_at(events.len() / 2);
    let mut session =
        SessionBuilder::new(Algorithm::WsdH, capacity, 1000).query(Pattern::Triangle).build();
    session.process_batch(head);
    session.set_weight_fn(WeightSpec::Policy(policy)).expect("dimensions match");
    session.process_batch(tail);
    let (qid, _) = session.queries().next().expect("one query");
    println!(
        "\nmid-stream swap: heuristic head + learned tail estimates {:.1} \
         ({} events, reservoir intact)",
        session.estimate(qid),
        session.events()
    );
}
