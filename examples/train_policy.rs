//! Train a WSD-L weight policy with DDPG (paper §IV), persist it, and
//! compare it against the WSD-H heuristic on a held-out stream — the
//! full WSD-L lifecycle through the public API.
//!
//! ```sh
//! cargo run --release --example train_policy
//! ```

use wsd::prelude::*;

fn main() {
    // Training graph: a small citation-style graph (the paper trains on
    // the smaller graph of the same category, Table I).
    let train_edges =
        GeneratorConfig::HolmeKim { vertices: 1_500, edges_per_vertex: 8, triad_prob: 0.6 }
            .generate(100);
    let scenario = Scenario::default_light();

    // DDPG with the paper's hyper-parameters (1000 iterations, batch
    // 128, replay 10k, γ=0.99, 10 training streams).
    let mut cfg = TrainerConfig::paper_defaults(Pattern::Triangle, train_edges.len() / 20);
    cfg.iterations = 600; // demo budget; the binaries use 1000
    println!("training WSD-L on {} edges…", train_edges.len());
    let report = train(&train_edges, scenario, &cfg);
    println!(
        "trained in {:.2?} ({} optimiser steps over {} transitions, {} episodes)",
        report.wall_time, report.optimizer_steps, report.transitions, report.episodes
    );

    // Persist + reload (the paper "hardcodes θ"; we save a policy file).
    let path = std::env::temp_dir().join("wsd-demo.policy");
    save_policy(&path, &report.policy).expect("policy serialises");
    let policy = load_policy(&path).expect("policy round-trips");
    assert_eq!(policy, report.policy);
    println!("policy saved to {} and reloaded", path.display());

    // Held-out evaluation: a larger graph of the same category.
    let test_edges =
        GeneratorConfig::HolmeKim { vertices: 6_000, edges_per_vertex: 8, triad_prob: 0.6 }
            .generate(200);
    let events = scenario.apply(&test_edges, 5);
    let truth = ExactCounter::count_stream(Pattern::Triangle, events.iter().copied())
        .expect("feasible stream") as f64;
    let budget = test_edges.len() / 20;

    let mean_are = |alg: Algorithm, policy: Option<LinearPolicy>| -> f64 {
        let reps = 15;
        (0..reps)
            .map(|seed| {
                let mut b = SessionBuilder::new(alg, budget, 900 + seed).query(Pattern::Triangle);
                if let Some(p) = policy.clone() {
                    b = b.with_policy(p);
                }
                let mut session = b.build();
                let (qid, _) = session.queries().next().expect("one query");
                session.process_all(&events);
                (session.estimate(qid) - truth).abs() / truth
            })
            .sum::<f64>()
            / reps as f64
    };
    let l = mean_are(Algorithm::WsdL, Some(policy));
    let h = mean_are(Algorithm::WsdH, None);
    println!("\nheld-out triangle ARE over 15 runs (truth {truth}):");
    println!("  WSD-L (learned) : {:.2}%", l * 100.0);
    println!("  WSD-H (heuristic): {:.2}%", h * 100.0);
    println!(
        "\nlearned policy is {:.0}% {} than the heuristic on this stream",
        (1.0 - l / h).abs() * 100.0,
        if l <= h { "better" } else { "worse" }
    );
}
