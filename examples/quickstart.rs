//! Quickstart: estimate triangle counts on a fully dynamic graph stream
//! with a fixed memory budget, and compare against the exact count.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wsd::prelude::*;

fn main() {
    // 1. A dynamic graph: a social-style synthetic graph whose edges
    //    arrive in natural (growth) order, with 20% of them deleted at
    //    random later positions — the paper's light-deletion scenario.
    let edges = GeneratorConfig::HolmeKim { vertices: 4_000, edges_per_vertex: 6, triad_prob: 0.6 }
        .generate(1);
    let events = Scenario::default_light().apply(&edges, 1);
    println!("stream: {} events ({} edge insertions)", events.len(), edges.len());

    // 2. Build three estimators under the same 5% memory budget.
    let budget = edges.len() / 20;
    let mut counters: Vec<Box<dyn SubgraphCounter>> =
        [Algorithm::WsdH, Algorithm::ThinkD, Algorithm::Triest]
            .into_iter()
            .map(|alg| CounterConfig::new(Pattern::Triangle, budget, 42).build(alg))
            .collect();

    // 3. Single pass over the stream; every estimator sees every event.
    let mut exact = ExactCounter::new(Pattern::Triangle);
    for &ev in &events {
        for c in &mut counters {
            c.process(ev);
        }
        exact.apply(ev).expect("generated streams are feasible");
    }

    // 4. Report.
    let truth = exact.count() as f64;
    println!("exact triangle count: {truth}");
    for c in &counters {
        let are = (c.estimate() - truth).abs() / truth * 100.0;
        println!(
            "{:>8}: estimate {:>12.1}  (ARE {:.2}%, {} edges stored)",
            c.name(),
            c.estimate(),
            are,
            c.stored_edges()
        );
    }
}
