//! Quickstart: estimate wedge, triangle and 4-clique counts on a fully
//! dynamic graph stream with **one shared sampler pass** under a fixed
//! memory budget, and compare against the exact counts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wsd::prelude::*;

fn main() {
    // 1. A dynamic graph: a social-style synthetic graph whose edges
    //    arrive in natural (growth) order, with 20% of them deleted at
    //    random later positions — the paper's light-deletion scenario.
    let edges = GeneratorConfig::HolmeKim { vertices: 4_000, edges_per_vertex: 6, triad_prob: 0.6 }
        .generate(1);
    let events = Scenario::default_light().apply(&edges, 1);
    println!("stream: {} events ({} edge insertions)", events.len(), edges.len());

    // 2. One WSD-H session under a 5% memory budget answers the paper's
    //    whole pattern grid from a single weighted edge sample — the
    //    sampling machinery (the dominant per-event cost) is paid once,
    //    not once per pattern, and because wedge ⊂ triangle ⊂ 4-clique
    //    all nest, the session plans one layered enumeration pass per
    //    event feeding all three queries (bit-identical to per-query
    //    passes).
    let budget = edges.len() / 20;
    let patterns = [Pattern::Wedge, Pattern::Triangle, Pattern::FourClique];
    let mut session = SessionBuilder::new(Algorithm::WsdH, budget, 42)
        .queries(patterns)
        .with_weight_pattern(Pattern::Triangle)
        .build();

    // 3. Single pass over the stream, with exact counters riding along
    //    for the comparison.
    let mut exact: Vec<ExactCounter> = patterns.iter().map(|&p| ExactCounter::new(p)).collect();
    BatchDriver::new().run_session(&mut session, &events);
    for ev in &events {
        for x in &mut exact {
            x.apply(*ev).expect("generated streams are feasible");
        }
    }

    // 4. Report: every query of the one session against its exact count.
    //    (Single runs are noisy for the rarest patterns — the estimators
    //    are *unbiased*, not low-variance; average replicas with
    //    `Ensemble::run_sessions` to tighten, as the paper's protocol
    //    does.)
    let report = session.report();
    println!(
        "{} session: {} events, {} edges stored, {} queries",
        report.algorithm,
        report.events,
        report.stored_edges,
        report.queries.len()
    );
    for (q, x) in report.queries.iter().zip(&exact) {
        let truth = x.count() as f64;
        let are = (q.estimate - truth).abs() / truth * 100.0;
        println!(
            "{:>9}: estimate {:>14.1}  exact {:>12}  (ARE {:.2}%)",
            q.pattern.name(),
            q.estimate,
            x.count(),
            are
        );
    }

    // 5. Queries also attach mid-stream: `attach_many` warms up a whole
    //    batch of new queries from ONE replay of the current sample and
    //    tracks subsequent events incrementally. (Here the stream is
    //    over, so the warm-up is the whole story.)
    let late = session.attach_many(&[Pattern::Triangle, Pattern::Wedge]);
    println!(
        "late-attached queries (one warm-up replay of the final sample): triangle {:.1}, wedge {:.1}",
        session.estimate(late[0]),
        session.estimate(late[1])
    );
}
