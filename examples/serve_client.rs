//! Minimal `wsd-serve` client round-trip: open a session, attach a
//! query mid-stream, feed events, snapshot, restore, feed both twins
//! the same tail, and verify the restored session answers with the
//! exact same estimate bits.
//!
//! ```text
//! cargo run --release --example serve_client              # in-process server
//! cargo run --release --example serve_client -- ADDR      # external server
//! ```
//!
//! Against an external server (the CI smoke test drives the `wsd-serve`
//! binary this way) the example also sends `Shutdown` at the end so the
//! server process exits cleanly. Exits non-zero on any mismatch.

use std::process::ExitCode;

use wsd::core::Algorithm;
use wsd::graph::{Edge, EdgeEvent, Pattern};
use wsd::serve::{serve, Client, ServerConfig};

fn churn(n: u64) -> Vec<EdgeEvent> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            out.push(EdgeEvent::insert(Edge::new(a, b)));
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if (a + b) % 3 == 0 {
                out.push(EdgeEvent::delete(Edge::new(a, b)));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let external = std::env::args().nth(1);
    // Without an address, boot a server inside this process.
    let (local_server, addr) = match &external {
        Some(addr) => (None, addr.clone()),
        None => {
            let server = serve("127.0.0.1:0", ServerConfig::default()).expect("bind server");
            let addr = server.local_addr().to_string();
            (Some(server), addr)
        }
    };
    println!("connecting to {addr}");
    let mut client = Client::connect(addr.as_str()).expect("connect");

    let stream = churn(14);
    let (head, tail) = stream.split_at(stream.len() / 2);

    let session =
        client.open(Algorithm::WsdH, 64, Some(42), &[Pattern::Triangle]).expect("open session");
    println!("opened session {session}");
    let wedge = client.attach(session, Pattern::Wedge).expect("attach");
    println!("attached wedge query in slot {wedge}");

    client.send_events(session, head).expect("send events");
    let applied = client.flush(session).expect("flush");
    println!("applied {applied} events");
    let before = client.estimates(session).expect("estimates");
    for q in &before.queries {
        println!("  {:?} ≈ {}", q.pattern, q.estimate);
    }

    let blob = client.snapshot(session).expect("snapshot");
    println!("snapshot: {} bytes", blob.len());
    let twin = client.restore(blob).expect("restore");
    println!("restored as session {twin}");

    for target in [session, twin] {
        client.send_events(target, tail).expect("send tail");
        client.flush(target).expect("flush tail");
    }
    let a = client.estimates(session).expect("estimates");
    let b = client.estimates(twin).expect("estimates");

    let mut ok = a.events == b.events && a.queries.len() == b.queries.len();
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        let same = qa.estimate.to_bits() == qb.estimate.to_bits();
        println!(
            "  {:?}: original {} vs restored {} — {}",
            qa.pattern,
            qa.estimate,
            qb.estimate,
            if same { "bit-identical" } else { "MISMATCH" }
        );
        ok &= same;
    }

    client.close(session).expect("close");
    client.close(twin).expect("close twin");
    if external.is_some() {
        client.shutdown_server().expect("shutdown");
        println!("asked server to shut down");
    }
    if let Some(server) = local_server {
        client.shutdown_server().expect("shutdown");
        server.wait();
    }
    if ok {
        println!("OK: restored session matched the original bit-for-bit");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: restored session diverged");
        ExitCode::FAILURE
    }
}
