//! `wsd-serve` client driver: a snapshot/restore round-trip demo plus
//! the durability drill the CI smoke test runs against a real server
//! process.
//!
//! ```text
//! cargo run --release --example serve_client                       # in-process demo
//! cargo run --release --example serve_client -- ADDR               # demo vs external server
//! cargo run --release --example serve_client -- --durability-ingest ADDR
//! cargo run --release --example serve_client -- --durability-verify ADDR
//! cargo run --release --example serve_client -- --stats ADDR
//! cargo run --release --example serve_client -- --swap-policy ADDR REGISTRY_DIR
//! ```
//!
//! The durability pair is one drill split by a server kill:
//! `--durability-ingest` opens eight mixed-algorithm sessions and feeds
//! each a 13 000-event head in frames sized exactly to the server's
//! `--autosave-every 500` (104 000 events total), flushes, and leaves
//! the server running — ready to be `kill -9`ed. After a reboot from
//! the same `--data-dir`, `--durability-verify` feeds each revived
//! session the 700-event tail under its **original id**, checks every
//! estimate bit-for-bit against an in-process twin that saw the whole
//! stream uninterrupted, reconciles the server's counters, and shuts
//! the server down. `--stats` just prints the metrics dump. All modes
//! exit non-zero on any mismatch.

use std::process::ExitCode;

use wsd::core::{Algorithm, PolicyRegistry, SessionBuilder, WeightSpec};
use wsd::graph::{Edge, EdgeEvent, Pattern};
use wsd::serve::{serve, Client, ServerConfig};

/// Per-session head length; a multiple of the smoke test's
/// `--autosave-every 500`, so the last completed autosave covers the
/// whole head and a kill anywhere after the ingest flush is recoverable
/// to exactly this point.
const HEAD_EVENTS: usize = 13_000;
/// Per-session tail fed after the reboot.
const TAIL_EVENTS: usize = 700;
/// Sessions in the drill; a fresh server mints ids 1..=SESSIONS.
const SESSIONS: u64 = 8;

fn churn(n: u64) -> Vec<EdgeEvent> {
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            out.push(EdgeEvent::insert(Edge::new(a, b)));
        }
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if (a + b) % 3 == 0 {
                out.push(EdgeEvent::delete(Edge::new(a, b)));
            }
        }
    }
    out
}

/// The drill stream: all-insert chain, so every prefix is valid for
/// every algorithm and both halves of the drill can regenerate it.
fn drill_stream() -> Vec<EdgeEvent> {
    (0..(HEAD_EVENTS + TAIL_EVENTS) as u64)
        .map(|i| EdgeEvent::insert(Edge::new(i, i + 1)))
        .collect()
}

fn drill_spec(i: u64) -> (Algorithm, u64, u64) {
    let algorithms = [Algorithm::WsdH, Algorithm::Triest, Algorithm::ThinkD, Algorithm::Wrs];
    (algorithms[(i % 4) as usize], 64, 1_000 + i)
}

fn durability_ingest(addr: &str) -> ExitCode {
    let mut client = Client::connect(addr).expect("connect");
    let stream = drill_stream();
    let head = &stream[..HEAD_EVENTS];
    for i in 0..SESSIONS {
        let (algorithm, capacity, seed) = drill_spec(i);
        let id = client
            .open(algorithm, capacity, Some(seed), &[Pattern::Wedge, Pattern::Triangle])
            .expect("open");
        if id != i + 1 {
            eprintln!("FAILED: expected session id {} from a fresh server, got {id}", i + 1);
            return ExitCode::FAILURE;
        }
        // Frames of exactly the autosave cadence: each frame completes
        // an autosave before the next is accepted.
        for frame in head.chunks(500) {
            client.send_events(id, frame).expect("send");
        }
        let applied = client.flush(id).expect("flush");
        if applied != HEAD_EVENTS as u64 {
            eprintln!("FAILED: session {id} applied {applied}, wanted {HEAD_EVENTS}");
            return ExitCode::FAILURE;
        }
        println!("session {id}: {algorithm:?} ingested {applied} head events");
    }
    let report = client.stats().expect("stats");
    println!(
        "ingest done: {} sessions, {} events, {} autosave writes ({} failed)",
        report.sessions, report.events, report.autosave_writes, report.autosave_failures
    );
    if report.events != (SESSIONS as usize * HEAD_EVENTS) as u64 || report.autosave_failures != 0 {
        eprintln!("FAILED: ingest counters off");
        return ExitCode::FAILURE;
    }
    // Leave the server running: the smoke test kills it with SIGKILL.
    println!("OK: server is now carrying {} durable sessions", report.sessions);
    ExitCode::SUCCESS
}

fn durability_verify(addr: &str) -> ExitCode {
    let mut client = Client::connect(addr).expect("connect");
    let stream = drill_stream();
    let tail = &stream[HEAD_EVENTS..];
    let mut ok = true;
    for i in 0..SESSIONS {
        let (algorithm, capacity, seed) = drill_spec(i);
        let id = i + 1;
        client.send_events(id, tail).expect("send tail");
        let applied = client.flush(id).expect("revived session accepts events");
        if applied != (HEAD_EVENTS + TAIL_EVENTS) as u64 {
            eprintln!("FAILED: session {id} at {applied} events after the tail");
            ok = false;
            continue;
        }
        // The reference twin never went down: head + tail, one process.
        let mut twin = SessionBuilder::new(algorithm, capacity as usize, seed)
            .query(Pattern::Wedge)
            .query(Pattern::Triangle)
            .build();
        twin.process_batch(&stream);
        let twin_report = twin.report();
        let served = client.estimates(id).expect("estimates");
        for (q, t) in served.queries.iter().zip(&twin_report.queries) {
            let same = q.estimate.to_bits() == t.estimate.to_bits();
            println!(
                "session {id} {:?}: revived {} vs twin {} — {}",
                q.pattern,
                q.estimate,
                t.estimate,
                if same { "bit-identical" } else { "MISMATCH" }
            );
            ok &= same;
        }
    }
    // Counter reconciliation: this server only ever saw the tails, and
    // every session must have been revived from disk, not re-opened.
    let report = client.stats().expect("stats");
    if report.sessions_restored != SESSIONS {
        eprintln!("FAILED: {} sessions restored, wanted {SESSIONS}", report.sessions_restored);
        ok = false;
    }
    if report.events != SESSIONS * TAIL_EVENTS as u64 {
        eprintln!(
            "FAILED: rebooted server ingested {} events, wanted {}",
            report.events,
            SESSIONS * TAIL_EVENTS as u64
        );
        ok = false;
    }
    client.shutdown_server().expect("shutdown");
    if ok {
        println!("OK: rebooted server tracked the never-killed twin bit-for-bit");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: durability drill found divergence");
        ExitCode::FAILURE
    }
}

/// The rl-smoke drill: for every `.wsdp` artifact in `dir`, open a
/// WSD-H session on the external server, feed a head, hot-swap the
/// learned policy over the wire, feed a tail, and demand the estimates
/// stay bit-identical to an in-process twin that used
/// `set_weight_fn` at the same point. Shuts the server down at the end.
fn swap_policy_drill(addr: &str, dir: &str) -> ExitCode {
    let registry = PolicyRegistry::open(dir).expect("registry dir scans");
    if registry.is_empty() {
        eprintln!("FAILED: no policy artifacts under {dir}");
        return ExitCode::FAILURE;
    }
    if !registry.rejected().is_empty() {
        for (path, err) in registry.rejected() {
            eprintln!("FAILED: rejected artifact {}: {err}", path.display());
        }
        return ExitCode::FAILURE;
    }
    let mut client = Client::connect(addr).expect("connect");
    let stream = churn(14);
    let (head, tail) = stream.split_at(stream.len() / 2);
    let mut ok = true;
    let mut swaps = 0u64;
    for artifact in registry.iter() {
        let pattern = artifact.meta.pattern;
        let seed = 4_242 + swaps;
        // The first query is the weight pattern, so the artifact's
        // dimension matches the session's by construction.
        let session = client.open(Algorithm::WsdH, 48, Some(seed), &[pattern]).expect("open");
        client.send_events(session, head).expect("send head");
        client.flush(session).expect("flush head");
        let spec = WeightSpec::Policy(artifact.policy.clone());
        let at = client.swap_policy(session, spec.clone()).expect("swap over the wire");
        swaps += 1;
        if at != head.len() as u64 {
            eprintln!("FAILED: swap point {at}, wanted {}", head.len());
            ok = false;
        }
        client.send_events(session, tail).expect("send tail");
        client.flush(session).expect("flush tail");

        let mut twin = SessionBuilder::new(Algorithm::WsdH, 48, seed).query(pattern).build();
        twin.process_batch(head);
        twin.set_weight_fn(spec).expect("in-process swap");
        twin.process_batch(tail);

        let served = client.estimates(session).expect("estimates");
        let twin_bits = twin.report().queries[0].estimate.to_bits();
        let same = served.queries[0].estimate.to_bits() == twin_bits;
        println!(
            "{} ({}): served {} vs in-process twin {} — {}",
            artifact.file_name(),
            pattern.name(),
            served.queries[0].estimate,
            f64::from_bits(twin_bits),
            if same { "bit-identical" } else { "MISMATCH" }
        );
        ok &= same;
        client.close(session).expect("close");
    }
    // The swaps must have been counted on the shard that applied them.
    let metrics = client.metrics().expect("metrics");
    if !metrics.lines().any(|l| l == format!("cmd_swap_policy_total {swaps}")) {
        eprintln!("FAILED: metrics did not count {swaps} policy swaps:\n{metrics}");
        ok = false;
    }
    client.shutdown_server().expect("shutdown");
    if ok {
        println!("OK: {swaps} served policy swaps matched their in-process twins bit-for-bit");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: policy-swap drill found divergence");
        ExitCode::FAILURE
    }
}

fn dump_stats(addr: &str) -> ExitCode {
    let mut client = Client::connect(addr).expect("connect");
    print!("{}", client.metrics().expect("metrics"));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, addr] if flag == "--durability-ingest" => return durability_ingest(addr),
        [flag, addr] if flag == "--durability-verify" => return durability_verify(addr),
        [flag, addr] if flag == "--stats" => return dump_stats(addr),
        [flag, addr, dir] if flag == "--swap-policy" => return swap_policy_drill(addr, dir),
        [] | [_] => {}
        _ => {
            eprintln!(
                "usage: serve_client [ADDR | --durability-ingest ADDR | \
                 --durability-verify ADDR | --stats ADDR | --swap-policy ADDR REGISTRY_DIR]"
            );
            return ExitCode::from(2);
        }
    }

    let external = args.first().cloned();
    // Without an address, boot a server inside this process.
    let (local_server, addr) = match &external {
        Some(addr) => (None, addr.clone()),
        None => {
            let server = serve("127.0.0.1:0", ServerConfig::default()).expect("bind server");
            let addr = server.local_addr().to_string();
            (Some(server), addr)
        }
    };
    println!("connecting to {addr}");
    let mut client = Client::connect(addr.as_str()).expect("connect");

    let stream = churn(14);
    let (head, tail) = stream.split_at(stream.len() / 2);

    let session =
        client.open(Algorithm::WsdH, 64, Some(42), &[Pattern::Triangle]).expect("open session");
    println!("opened session {session}");
    let wedge = client.attach(session, Pattern::Wedge).expect("attach");
    println!("attached wedge query in slot {wedge}");

    client.send_events(session, head).expect("send events");
    let applied = client.flush(session).expect("flush");
    println!("applied {applied} events");
    let before = client.estimates(session).expect("estimates");
    for q in &before.queries {
        println!("  {:?} ≈ {}", q.pattern, q.estimate);
    }

    let blob = client.snapshot(session).expect("snapshot");
    println!("snapshot: {} bytes", blob.len());
    let twin = client.restore(blob).expect("restore");
    println!("restored as session {twin}");

    for target in [session, twin] {
        client.send_events(target, tail).expect("send tail");
        client.flush(target).expect("flush tail");
    }
    let a = client.estimates(session).expect("estimates");
    let b = client.estimates(twin).expect("estimates");

    let mut ok = a.events == b.events && a.queries.len() == b.queries.len();
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        let same = qa.estimate.to_bits() == qb.estimate.to_bits();
        println!(
            "  {:?}: original {} vs restored {} — {}",
            qa.pattern,
            qa.estimate,
            qb.estimate,
            if same { "bit-identical" } else { "MISMATCH" }
        );
        ok &= same;
    }

    client.close(session).expect("close");
    client.close(twin).expect("close twin");
    if external.is_some() {
        client.shutdown_server().expect("shutdown");
        println!("asked server to shut down");
    }
    if let Some(server) = local_server {
        client.shutdown_server().expect("shutdown");
        server.wait();
    }
    if ok {
        println!("OK: restored session matched the original bit-for-bit");
        ExitCode::SUCCESS
    } else {
        eprintln!("FAILED: restored session diverged");
        ExitCode::FAILURE
    }
}
