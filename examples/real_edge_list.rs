//! Run the full pipeline on a *real* edge-list file (SNAP /
//! networkrepository format) — the path for reproducing the paper on its
//! original datasets when you have them on disk.
//!
//! ```sh
//! cargo run --release --example real_edge_list -- /path/to/edges.txt
//! ```
//!
//! Without an argument, a small demo file is written to a temp directory
//! and used instead, so the example is runnable out of the box.

use std::io::Write as _;
use wsd::prelude::*;
use wsd::stream::loader::load_edge_list;
use wsd::stream::StreamStats;

fn demo_file() -> std::path::PathBuf {
    // A toy "web" graph in the usual whitespace format with comments.
    let path = std::env::temp_dir().join("wsd-demo-edges.txt");
    let mut f = std::fs::File::create(&path).expect("temp file");
    writeln!(f, "# demo edge list (u v per line)").unwrap();
    let edges =
        GeneratorConfig::Copying { vertices: 2_000, out_degree: 6, copy_prob: 0.7 }.generate(3);
    for e in edges {
        writeln!(f, "{} {}", e.u(), e.v()).unwrap();
    }
    path
}

fn main() {
    let path = std::env::args().nth(1).map(Into::into).unwrap_or_else(demo_file);
    println!("loading {} …", std::path::Path::new(&path).display());
    let edges = match load_edge_list(&path) {
        Ok(e) => e,
        Err(err) => {
            eprintln!("could not load edge list: {err}");
            std::process::exit(1);
        }
    };
    println!("{} unique undirected edges (self-loops/duplicates dropped)", edges.len());

    // Build the paper's massive-deletion stream over the file's natural
    // order and describe it.
    let events = Scenario::default_massive(edges.len()).apply(&edges, 9);
    let stats = StreamStats::compute(&events);
    println!(
        "stream: {} events = {} inserts + {} deletes; final graph {} edges / {} vertices",
        stats.events, stats.insertions, stats.deletions, stats.final_edges, stats.final_vertices
    );

    // Estimate triangles with a 5% budget and compare against exact.
    let budget = (edges.len() / 20).max(100);
    let mut session =
        SessionBuilder::new(Algorithm::WsdH, budget, 1).query(Pattern::Triangle).build();
    let (triangles, _) = session.queries().next().expect("one query");
    session.process_all(&events);
    let truth = ExactCounter::count_stream(Pattern::Triangle, events).expect("feasible") as f64;
    println!(
        "triangles: exact {truth}, WSD-H estimate {:.1} (budget {budget} edges)",
        session.estimate(triangles)
    );
}
