//! Anomaly detection on a dynamic social stream (the paper's §I
//! motivation): triangle-based statistics expose coordinated behaviour.
//!
//! A healthy social network maintains a fairly stable global
//! *transitivity* `3·T / W` (triangles per wedge). A bot farm that
//! registers a tight clique of accounts injects a burst of edges that
//! are abnormally triangle-dense. This example maintains streaming
//! estimates of both counts with **one** WSD-H stream session — a
//! single shared sampler answering the triangle and wedge queries at
//! once under a small fixed budget — and flags windows where the
//! transitivity estimate jumps.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use wsd::prelude::*;

/// Builds a stream with a clique-bomb planted at two-thirds of it.
fn build_stream() -> (EventStream, std::ops::Range<usize>) {
    let edges = GeneratorConfig::HolmeKim { vertices: 3_000, edges_per_vertex: 5, triad_prob: 0.4 }
        .generate(11);
    let mut events = Scenario::default_light().apply(&edges, 11);
    // The bot farm: a 40-clique over fresh vertex ids, inserted as one
    // contiguous burst.
    let base = 1_000_000u64;
    let k = 40u64;
    let mut bomb: EventStream = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            bomb.push(EdgeEvent::insert(Edge::new(base + a, base + b)));
        }
    }
    let at = events.len() * 2 / 3;
    let bomb_range = at..at + bomb.len();
    let tail = events.split_off(at);
    events.extend(bomb);
    events.extend(tail);
    (events, bomb_range)
}

fn main() {
    let (events, bomb_range) = build_stream();
    println!(
        "{} events; clique bomb hidden at events {}..{}",
        events.len(),
        bomb_range.start,
        bomb_range.end
    );

    // One triangle-weighted sampler serves both queries: half the
    // memory and half the sampling work of the two-counter setup this
    // example used before the session API.
    let budget = 3_000;
    let mut session = SessionBuilder::new(Algorithm::WsdH, budget, 7)
        .query(Pattern::Triangle)
        .query(Pattern::Wedge)
        .build();
    let ids: Vec<QueryId> = session.queries().map(|(id, _)| id).collect();
    let (triangles, wedges) = (ids[0], ids[1]);

    let window = events.len() / 40;
    let mut last_transitivity: Option<f64> = None;
    let mut alarms: Vec<usize> = Vec::new();
    for (i, &ev) in events.iter().enumerate() {
        session.process(ev);
        if (i + 1) % window == 0 {
            let w = session.estimate(wedges).max(1.0);
            let t = (3.0 * session.estimate(triangles) / w).max(0.0);
            let jump = last_transitivity.map_or(0.0, |p| t - p);
            let flag = jump > 0.008;
            if flag {
                alarms.push(i);
            }
            println!(
                "event {i:>7}: transitivity ≈ {t:.4} (Δ {jump:+.4}){}",
                if flag { "  ← ANOMALY" } else { "" }
            );
            last_transitivity = Some(t);
        }
    }
    let detected =
        alarms.iter().any(|&i| i + window >= bomb_range.start && i <= bomb_range.end + window);
    println!(
        "\nclique bomb {}",
        if detected { "DETECTED by transitivity monitor" } else { "missed (tune the threshold)" }
    );
}
